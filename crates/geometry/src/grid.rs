//! Randomly shifted hierarchical grids (§3.1).
//!
//! The space `[Δ]^d` (with `Δ = 2^L`) is partitioned by `L + 2` nested
//! grids `G₋₁, G₀, …, G_L`. Grid `Gᵢ` has cells of side `gᵢ = Δ/2^i`
//! aligned so that one cell corner sits at the (negated) random shift
//! vector `v ∈ [0, Δ)^d` drawn once per hierarchy:
//!
//! ```text
//! Gᵢ = { [gᵢt₁−v₁, gᵢ(t₁+1)−v₁) × … × [gᵢt_d−v_d, gᵢ(t_d+1)−v_d) : t ∈ ℤ^d }
//! ```
//!
//! (Shifting the grid by `−v` rather than `+v` is the convention that
//! makes the paper's Fact A.1 literally true: the `G₋₁` cell `t = 0`,
//! namely `[−v, 2Δ−v)^d`, always contains all of `[Δ]^d` because
//! `v ∈ [0, Δ)`. The two conventions describe the same distribution over
//! grids.) `G_L` has side 1, so each of its cells contains at most one
//! integer point. Cells are identified by their integer index vector `t`
//! ([`CellId`]), and the parent of a level-`i` cell in `G_{i−1}` is
//! obtained by flooring each index halved — no geometry needed. With this
//! convention every cell containing a point of `[Δ]^d` has non-negative
//! indices (`t ∈ [0, 2^{i+1}]` at level `i ≥ 0`; `t = 0` at level `−1`).

use crate::point::Point;
use rand::Rng;

/// Static parameters of a grid hierarchy: the cube `[Δ]^d` with `Δ = 2^L`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridParams {
    /// Coordinate range `Δ` (must be a power of two, `Δ = 2^L`).
    pub delta: u64,
    /// `L = log₂ Δ`.
    pub l: u32,
    /// Dimension `d`.
    pub d: usize,
}

impl GridParams {
    /// Builds parameters from `L` and `d` (`Δ = 2^L`).
    pub fn from_log_delta(l: u32, d: usize) -> Self {
        assert!(l <= 40, "Δ = 2^L with L ≤ 40 supported");
        assert!(d >= 1);
        Self {
            delta: 1u64 << l,
            l,
            d,
        }
    }

    /// Builds parameters from `Δ` (must be a power of two) and `d`.
    pub fn from_delta(delta: u64, d: usize) -> Self {
        assert!(delta.is_power_of_two(), "the paper assumes Δ = 2^L");
        Self::from_log_delta(delta.trailing_zeros(), d)
    }

    /// Side length `gᵢ = Δ/2^i` of level-`i` cells (`i ∈ {−1, …, L}`).
    pub fn side_len(&self, level: i32) -> f64 {
        assert!(level >= -1 && level <= self.l as i32);
        if level < 0 {
            (self.delta * 2) as f64
        } else {
            (self.delta as f64) / (1u64 << level) as f64
        }
    }

    /// Number of grid levels excluding `G₋₁` (i.e. `L + 1` levels `0..=L`).
    pub fn num_levels(&self) -> usize {
        self.l as usize + 1
    }
}

/// Identifier of one grid cell: its level and integer index vector `t`.
///
/// Ordered lexicographically (level first) so `BTreeMap` iteration is
/// deterministic across runs — important for reproducible coresets.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Grid level `i ∈ {−1, 0, …, L}`.
    pub level: i32,
    /// Integer index vector `t ∈ ℤ^d` of the cell in `Gᵢ`.
    pub coords: Vec<i64>,
}

impl CellId {
    /// The parent cell in `G_{level−1}`.
    ///
    /// Because consecutive grids share the corner `v` and halve/double the
    /// side length, the parent index is the floored half of the child
    /// index: `t' = ⌊t/2⌋` (Euclidean division, correct for negatives).
    ///
    /// # Panics
    /// Panics when called on a `G₋₁` cell (which has no parent).
    pub fn parent(&self) -> CellId {
        assert!(self.level >= 0, "G₋₁ cells have no parent");
        CellId {
            level: self.level - 1,
            coords: self.coords.iter().map(|c| c.div_euclid(2)).collect(),
        }
    }

    /// Packs the cell into a `u128` when it fits: 6 bits of level followed
    /// by `d` fixed-width offset indices. Returns `None` when
    /// `6 + d·(level+2) > 128`.
    ///
    /// For a level-`i` cell containing a point of `[Δ]^d` the index lies in
    /// `[−2^i, 2^i]`, so `i + 2` bits per coordinate (after offsetting by
    /// `2^i`) are always sufficient; level −1 needs one bit.
    ///
    /// Hidden from the documented surface: the packing is an ingest-kernel
    /// implementation detail (arena table keys), not a stable identifier
    /// format.
    #[doc(hidden)]
    pub fn pack(&self) -> Option<u128> {
        let (width, offset): (u32, i64) = if self.level >= 0 {
            ((self.level + 2) as u32, 0)
        } else {
            (1, 0)
        };
        let total = 6 + width as usize * self.coords.len();
        if total > 128 {
            return None;
        }
        let mut key: u128 = (self.level + 1) as u128; // level ∈ [−1, L] → [0, L+1]
        for &c in &self.coords {
            let shifted = c + offset;
            debug_assert!(shifted >= 0 && (shifted as u128) < (1u128 << (width + 1)));
            if shifted < 0 || (shifted as u128) >= (1u128 << width) {
                return None; // out of the expected index range — refuse to truncate
            }
            key = (key << width) | (shifted as u128);
        }
        Some(key)
    }

    /// Inverts [`Self::pack`] given the cell's level and dimension.
    /// Returns `None` for keys that are not valid packings (stray bits or
    /// mismatched embedded level).
    pub fn unpack(key: u128, level: i32, d: usize) -> Option<CellId> {
        let width: u32 = if level >= 0 { (level + 2) as u32 } else { 1 };
        if 6 + width as usize * d > 128 {
            return None;
        }
        let mask = (1u128 << width) - 1;
        let mut k = key;
        let mut coords = vec![0i64; d];
        for slot in coords.iter_mut().rev() {
            *slot = (k & mask) as i64;
            k >>= width;
        }
        if k != (level + 1) as u128 {
            return None; // embedded level must match
        }
        Some(CellId { level, coords })
    }

    /// A 128-bit key: injective packing when it fits, otherwise a mixing
    /// hash (collisions ≈ 2⁻¹²⁸ per pair; see DESIGN.md §2.8).
    pub fn key128(&self) -> u128 {
        self.pack().unwrap_or_else(|| {
            let mut acc: u128 = 0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C834;
            let mut step = |v: u64| {
                let mut z = (acc as u64) ^ v;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                acc = (acc << 23) ^ (acc >> 105) ^ (z as u128) ^ ((z as u128) << 61);
            };
            step(self.level as u64);
            for &c in &self.coords {
                step(c as u64);
            }
            acc
        })
    }
}

/// A randomly shifted grid hierarchy over `[Δ]^d`.
#[derive(Clone, Debug)]
pub struct GridHierarchy {
    params: GridParams,
    /// The random shift `v ∈ [0, Δ)^d` (paper: i.i.d. uniform entries).
    shift: Vec<f64>,
}

impl GridHierarchy {
    /// Draws a fresh random shift from `rng` (entries i.i.d. uniform on
    /// `[0, Δ)`).
    pub fn new<R: Rng + ?Sized>(params: GridParams, rng: &mut R) -> Self {
        let shift = (0..params.d)
            .map(|_| rng.gen_range(0.0..params.delta as f64))
            .collect();
        Self { params, shift }
    }

    /// Builds a hierarchy with an explicit shift (tests, distributed
    /// machines that must agree on the coordinator's shift).
    pub fn with_shift(params: GridParams, shift: Vec<f64>) -> Self {
        assert_eq!(shift.len(), params.d);
        assert!(shift
            .iter()
            .all(|&s| (0.0..params.delta as f64).contains(&s)));
        Self { params, shift }
    }

    /// The zero-shift hierarchy (deterministic; degrades the guarantees in
    /// adversarial cases, useful for illustrative tests).
    pub fn unshifted(params: GridParams) -> Self {
        Self {
            params,
            shift: vec![0.0; params.d],
        }
    }

    /// The hierarchy's parameters.
    pub fn params(&self) -> GridParams {
        self.params
    }

    /// The shift vector `v`.
    pub fn shift(&self) -> &[f64] {
        &self.shift
    }

    /// `L = log₂ Δ`.
    pub fn l(&self) -> u32 {
        self.params.l
    }

    /// Side length `gᵢ` of level-`i` cells.
    pub fn side_len(&self, level: i32) -> f64 {
        self.params.side_len(level)
    }

    /// The cell `cᵢ(p) ∈ Gᵢ` containing `p`.
    pub fn cell_of(&self, p: &Point, level: i32) -> CellId {
        let mut coords = Vec::with_capacity(self.params.d);
        self.cell_coords_into(p, level, &mut coords);
        CellId { level, coords }
    }

    /// Allocation-free variant of [`Self::cell_of`]: writes the index
    /// vector into `out` (cleared first). Hot path of the streaming
    /// update loop.
    pub fn cell_coords_into(&self, p: &Point, level: i32, out: &mut Vec<i64>) {
        debug_assert_eq!(p.dim(), self.params.d, "dimension mismatch");
        debug_assert!(level >= -1 && level <= self.params.l as i32);
        let g = self.side_len(level);
        out.clear();
        for (j, &c) in p.coords().iter().enumerate() {
            // Cell index t with p ∈ [g·t − v, g·(t+1) − v).
            let t = ((c as f64 + self.shift[j]) / g).floor() as i64;
            out.push(t);
        }
    }

    /// Cells of `p` at every level `−1..=L`, root first.
    pub fn cells_of(&self, p: &Point) -> Vec<CellId> {
        (-1..=self.params.l as i32)
            .map(|i| self.cell_of(p, i))
            .collect()
    }

    /// Euclidean distance from a point to (the closure of) a cell: 0 when
    /// the point is inside, otherwise distance to the nearest face. Used
    /// by the center-cell analysis (Lemma 3.2) in tests & experiments.
    pub fn dist_point_cell(&self, p: &Point, cell: &CellId) -> f64 {
        let g = self.side_len(cell.level);
        let mut acc = 0.0;
        for (j, (&c, &t)) in p.coords().iter().zip(&cell.coords).enumerate() {
            let lo = g * t as f64 - self.shift[j];
            let hi = lo + g;
            let x = c as f64;
            let gap = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(cs: &[u32]) -> Point {
        Point::new(cs.to_vec())
    }

    #[test]
    fn side_lengths_halve_per_level() {
        let gp = GridParams::from_log_delta(4, 2); // Δ = 16
        assert_eq!(gp.side_len(-1), 32.0);
        assert_eq!(gp.side_len(0), 16.0);
        assert_eq!(gp.side_len(1), 8.0);
        assert_eq!(gp.side_len(4), 1.0);
    }

    #[test]
    fn root_cell_contains_whole_cube() {
        // Fact A.1: a single G₋₁ cell contains all of [Δ]^d.
        let gp = GridParams::from_log_delta(5, 3);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let grid = GridHierarchy::new(gp, &mut rng);
            let corner_lo = pt(&[1, 1, 1]);
            let corner_hi = pt(&[32, 32, 32]);
            assert_eq!(grid.cell_of(&corner_lo, -1), grid.cell_of(&corner_hi, -1));
        }
    }

    #[test]
    fn parent_matches_direct_computation() {
        let gp = GridParams::from_log_delta(6, 2);
        let mut rng = StdRng::seed_from_u64(42);
        let grid = GridHierarchy::new(gp, &mut rng);
        let mut prng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let p = pt(&[
                rand::Rng::gen_range(&mut prng, 1..=64u32),
                rand::Rng::gen_range(&mut prng, 1..=64u32),
            ]);
            for level in 0..=6i32 {
                let child = grid.cell_of(&p, level);
                let parent_direct = grid.cell_of(&p, level - 1);
                assert_eq!(child.parent(), parent_direct, "level {level} point {p:?}");
            }
        }
    }

    #[test]
    fn level_l_cells_hold_at_most_one_point() {
        let gp = GridParams::from_log_delta(3, 2); // Δ = 8 → 64 points
        let mut rng = StdRng::seed_from_u64(3);
        let grid = GridHierarchy::new(gp, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for a in 1..=8u32 {
            for b in 1..=8u32 {
                let cell = grid.cell_of(&pt(&[a, b]), 3);
                assert!(seen.insert(cell), "two points share a G_L cell");
            }
        }
    }

    #[test]
    fn pack_roundtrip_unique() {
        let gp = GridParams::from_log_delta(5, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let grid = GridHierarchy::new(gp, &mut rng);
        let mut keys = std::collections::HashMap::new();
        for a in 1..=32u32 {
            for b in 1..=32u32 {
                for level in -1..=5i32 {
                    let cell = grid.cell_of(&pt(&[a, b]), level);
                    let key = cell.pack().expect("fits in 128 bits");
                    if let Some(prev) = keys.insert(key, cell.clone()) {
                        assert_eq!(prev, cell, "pack collision between distinct cells");
                    }
                }
            }
        }
    }

    #[test]
    fn dist_point_cell_zero_inside() {
        let gp = GridParams::from_log_delta(4, 2);
        let grid = GridHierarchy::unshifted(gp);
        let p = pt(&[3, 3]);
        let cell = grid.cell_of(&p, 2); // side 4 cell [0,4)×[0,4)
        assert_eq!(grid.dist_point_cell(&p, &cell), 0.0);
        let far = pt(&[9, 3]);
        // far is 5 to the right of the cell's high x-face at 4.
        assert!((grid.dist_point_cell(&far, &cell) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cells_of_returns_all_levels() {
        let gp = GridParams::from_log_delta(4, 1);
        let grid = GridHierarchy::unshifted(gp);
        let cells = grid.cells_of(&pt(&[5]));
        assert_eq!(cells.len(), 6); // levels −1..=4
        assert_eq!(cells[0].level, -1);
        assert_eq!(cells[5].level, 4);
    }
}
