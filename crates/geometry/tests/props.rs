//! Property tests for the geometric substrate: grid laws that the whole
//! partition machinery silently relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_geometry::{GridHierarchy, GridParams, Point};

fn arb_point(delta: u32, d: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(1..=delta, d).prop_map(Point::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cell nesting: the parent of a point's level-i cell is the point's
    /// level-(i−1) cell, for every level and any shift.
    #[test]
    fn parenthood_commutes_with_lookup(
        p in arb_point(256, 3),
        shift_seed in 0u64..1000,
    ) {
        let gp = GridParams::from_log_delta(8, 3);
        let mut rng = StdRng::seed_from_u64(shift_seed);
        let grid = GridHierarchy::new(gp, &mut rng);
        for level in 0..=8i32 {
            let child = grid.cell_of(&p, level);
            prop_assert_eq!(child.parent(), grid.cell_of(&p, level - 1));
        }
    }

    /// Two points in the same level-i cell are within √d·gᵢ of each other
    /// — the diameter bound every variance argument uses.
    #[test]
    fn same_cell_implies_bounded_distance(
        a in arb_point(256, 2),
        b in arb_point(256, 2),
        shift_seed in 0u64..1000,
        level in 0i32..=8,
    ) {
        let gp = GridParams::from_log_delta(8, 2);
        let mut rng = StdRng::seed_from_u64(shift_seed);
        let grid = GridHierarchy::new(gp, &mut rng);
        if grid.cell_of(&a, level) == grid.cell_of(&b, level) {
            let bound = (2f64).sqrt() * gp.side_len(level);
            prop_assert!(a.dist(&b) <= bound + 1e-9);
        }
    }

    /// Cell ids pack/unpack losslessly whenever packing succeeds.
    #[test]
    fn cell_pack_roundtrip(
        p in arb_point(1024, 2),
        shift_seed in 0u64..1000,
        level in -1i32..=10,
    ) {
        let gp = GridParams::from_log_delta(10, 2);
        let mut rng = StdRng::seed_from_u64(shift_seed);
        let grid = GridHierarchy::new(gp, &mut rng);
        let cell = grid.cell_of(&p, level);
        if let Some(key) = cell.pack() {
            prop_assert_eq!(sbc_geometry::CellId::unpack(key, level, 2), Some(cell));
        }
    }

    /// Point keys are injective on the packed regime.
    #[test]
    fn point_key_injective(
        a in arb_point(4096, 3),
        b in arb_point(4096, 3),
    ) {
        let delta = 4096u64;
        if a != b {
            prop_assert_ne!(a.key128(delta), b.key128(delta));
        } else {
            prop_assert_eq!(a.key128(delta), b.key128(delta));
        }
    }

    /// dist_point_cell is 0 exactly for the containing cell and positive
    /// for disjoint cells at the same level.
    #[test]
    fn point_cell_distance_semantics(
        p in arb_point(256, 2),
        q in arb_point(256, 2),
        shift_seed in 0u64..1000,
        level in 0i32..=8,
    ) {
        let gp = GridParams::from_log_delta(8, 2);
        let mut rng = StdRng::seed_from_u64(shift_seed);
        let grid = GridHierarchy::new(gp, &mut rng);
        let own = grid.cell_of(&p, level);
        prop_assert_eq!(grid.dist_point_cell(&p, &own), 0.0);
        let other = grid.cell_of(&q, level);
        if other != own {
            // p may still touch the boundary of q's cell: distance ≥ 0,
            // and must be ≤ dist(p, q) (q is inside its own cell).
            let d = grid.dist_point_cell(&p, &other);
            prop_assert!(d >= 0.0);
            prop_assert!(d <= p.dist(&q) + 1e-9);
        }
    }

    /// The alphabetical order is a total order consistent with equality.
    #[test]
    fn alphabetical_total_order(
        a in arb_point(64, 3),
        b in arb_point(64, 3),
        c in arb_point(64, 3),
    ) {
        use std::cmp::Ordering;
        let ab = a.alphabetical_cmp(&b);
        let ba = b.alphabetical_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == Ordering::Equal, a == b);
        // Transitivity spot-check.
        if ab != Ordering::Greater && b.alphabetical_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.alphabetical_cmp(&c), Ordering::Greater);
        }
    }
}
