//! `serve_bench` — the multi-tenant load generator behind the
//! `"serving"` section of `BENCH_streaming.json`.
//!
//! Drives a [`CoresetService`] through the typed client (every op
//! crosses the real `SBCSRV1` wire format) with ≥1000 interleaved
//! tenants of mixed traffic — batched inserts, deletions, mid-stream
//! coreset queries, explicit evictions with transparent restores — and
//! reports **machine-independent ratios** next to the raw numbers:
//!
//! * `multi_tenant_efficiency` — aggregate ops/s with N interleaved
//!   tenants over single-tenant ops/s on the identical per-tenant
//!   schedule (the multiplexing overhead; gated by `bench_guard`);
//! * `peak_bytes_per_tenant` — peak admission-control footprint per
//!   tenant (deterministic; ceiling-gated);
//! * `coresets_bit_identical` — sampled tenants' served coresets
//!   compared entry-for-entry against locally rebuilt single-tenant
//!   pipelines (must be `true`);
//! * `p99_admission_ns` — admission-decision latency tail (reported,
//!   schema-checked, not ratio-gated: absolute latency is
//!   host-dependent).
//!
//! The bench also emits a `"service_obs"` section: an interleaved
//! best-of comparison of the same multi-tenant drive with service
//! metrics off vs on (`overhead_ratio`, gated ≥ 0.98 by `bench_guard`
//! when the `obs` feature is compiled in), plus request-latency
//! percentiles from the per-tenant SLO histograms. `--prom PATH`
//! writes (and validates) one Prometheus exposition of the final
//! instrumented run; `--slow-dump-dir PATH` arms the deterministic
//! slow-request probe for one extra untimed run so CI can archive a
//! `slow-<tenant>-<seq>.json` flight-recorder dump.
//!
//! `--fault-profile` routes traffic through the [`Lossy`] transport
//! (seeded envelope drops/duplicates + retries, deduplicated
//! server-side); identity must still hold. `--merge-into` folds the
//! sections into an existing `BENCH_streaming.json`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sbc::api::{CoresetPoint, ServerStatsReport, TenantSpec, PROTOCOL_VERSION};
use sbc::obs::json::JsonValue;
use sbc::prelude::*;
use sbc::{Coreset, StreamCoresetBuilder};
use sbc_serve::client::LossyStats;
use sbc_serve::{
    Client, CoresetService, Fleet, InProcess, Lossy, OverloadPolicy, ServeConfig, Transport,
    REPLAY_QUEUE_MAX_OPS,
};

#[global_allocator]
static ALLOC: sbc_obs::alloc::TrackingAlloc = sbc_obs::alloc::TrackingAlloc;

/// One tenant's deterministic traffic schedule. Derived purely from
/// `(spec.seed, ops, batch)`, so the bench can replay it against a
/// local reference pipeline for the bit-identity check.
struct Schedule {
    spec: TenantSpec,
    batches: Vec<Vec<Point>>,
    /// The batch deleted again after all inserts (mixed traffic).
    delete_batch: usize,
}

impl Schedule {
    fn new(tenant: u64, base_seed: u64, shards: u32, ops: usize, batch: usize) -> Schedule {
        let spec = TenantSpec {
            shards,
            seed: base_seed ^ tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..TenantSpec::default()
        };
        let gp = GridParams::from_log_delta(spec.log_delta, spec.dims as usize);
        let points = sbc::geometry::dataset::gaussian_mixture(gp, ops, 2, 0.08, spec.seed);
        let batches: Vec<Vec<Point>> = points.chunks(batch.max(1)).map(<[Point]>::to_vec).collect();
        Schedule {
            spec,
            delete_batch: batches.len() / 2,
            batches,
        }
    }

    /// Applies this schedule to a local reference pipeline and returns
    /// its mid-stream coreset — the ground truth the served coreset
    /// must match bit-for-bit.
    fn reference_coreset(&self) -> Coreset {
        // The same protocol-contract derivation the service uses — the
        // whole point of `sbc::api::tenant_pipeline` being shared.
        let (params, sp) = sbc::api::tenant_pipeline(&self.spec).expect("bench spec is valid");
        if self.spec.shards <= 1 {
            let mut rng = StdRng::seed_from_u64(self.spec.seed);
            let mut b = StreamCoresetBuilder::new(params, sp, &mut rng);
            for batch in &self.batches {
                b.insert_batch(batch);
            }
            for p in &self.batches[self.delete_batch] {
                b.delete(p);
            }
            b.finish_ref().expect("reference coreset")
        } else {
            let mut ingest =
                ShardedIngest::new(params, sp, self.spec.seed).expect("bench spec is valid");
            for batch in &self.batches {
                ingest.insert_batch(batch);
            }
            for p in &self.batches[self.delete_batch] {
                ingest.delete(p);
            }
            ingest.finish_ref().expect("reference coreset")
        }
    }
}

/// Runs every schedule to completion, interleaved round-robin batch by
/// batch (tenant A's batch 2 lands between B's 1 and C's 3 — genuinely
/// mixed multi-tenant traffic). Returns (applied ops, elapsed seconds).
fn drive<T: Transport>(
    client: &mut Client<T>,
    schedules: &[Schedule],
    query_every: usize,
    evict_every: usize,
) -> (u64, f64) {
    let mut applied = 0u64;
    let rounds = schedules.iter().map(|s| s.batches.len()).max().unwrap_or(0);
    // Opens (builder construction, dominated by store preallocation) stay
    // outside the timed window: the efficiency ratio compares steady-state
    // traffic multiplexing, not N-vs-1 arena setup.
    for (t, s) in schedules.iter().enumerate() {
        client.open(t as u64, s.spec).expect("open tenant");
    }
    let t0 = Instant::now();
    for round in 0..rounds {
        for (t, s) in schedules.iter().enumerate() {
            let id = t as u64;
            if let Some(batch) = s.batches.get(round) {
                client.insert(id, batch).expect("insert batch");
                applied += batch.len() as u64;
            }
            // Mid-schedule mixed traffic, staggered by tenant id so the
            // service sees queries/evictions between everyone's inserts.
            if round == s.batches.len() / 2 {
                if evict_every > 0 && t % evict_every == 0 {
                    client.evict(id).expect("explicit evict");
                }
                if query_every > 0 && t % query_every == 0 {
                    let (_o, pts) = client.query(id).expect("mid-stream query");
                    assert!(!pts.is_empty() || s.batches.is_empty());
                }
            }
        }
    }
    // Deletion pass: every tenant re-deletes one earlier batch (and an
    // evicted tenant is transparently restored by it).
    for (t, s) in schedules.iter().enumerate() {
        let batch = &s.batches[s.delete_batch];
        client.delete(t as u64, batch).expect("delete batch");
        applied += batch.len() as u64;
    }
    (applied, t0.elapsed().as_secs_f64())
}

/// Queries `identity_checks` evenly spaced tenants through the wire and
/// returns their served coresets for the identity comparison.
fn sample_queries<T: Transport>(
    client: &mut Client<T>,
    schedules: &[Schedule],
    identity_checks: usize,
) -> Vec<(usize, Vec<CoresetPoint>)> {
    let stride = (schedules.len() / identity_checks.max(1)).max(1);
    (0..schedules.len())
        .step_by(stride)
        .take(identity_checks)
        .map(|t| {
            let (_o, pts) = client.query(t as u64).expect("identity query");
            (t, pts)
        })
        .collect()
}

fn served_matches_reference(served: &[CoresetPoint], reference: &Coreset) -> bool {
    let entries = reference.entries();
    served.len() == entries.len()
        && served.iter().zip(entries).all(|(s, e)| {
            s.point == e.point
                && s.weight.to_bits() == e.weight.to_bits()
                && s.level == e.level
                && s.part == e.part as u64
        })
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Small overload drill: a deliberately tiny budget, both policies.
/// Returns (reject_overloaded, shed_evictions).
fn overload_drill(schedules: &[Schedule], budget_bytes: usize) -> (u64, u64) {
    let mut counts = [0u64; 2];
    for (i, policy) in [OverloadPolicy::Reject, OverloadPolicy::Shed]
        .into_iter()
        .enumerate()
    {
        let service = CoresetService::new(ServeConfig {
            budget_bytes,
            policy,
            ..ServeConfig::default()
        });
        let mut client = Client::new(InProcess::new(service));
        client.hello().expect("hello");
        for (t, s) in schedules.iter().enumerate().take(32) {
            // Refusals (of opens and inserts alike) are the point of
            // the drill; keep feeding regardless.
            let _ = client.open(t as u64, s.spec);
            for batch in &s.batches {
                let _ = client.insert(t as u64, batch);
            }
        }
        let stats = client.server_stats().expect("server stats");
        counts[i] = match policy {
            OverloadPolicy::Reject => stats.overloaded,
            OverloadPolicy::Shed => stats.evictions,
        };
    }
    (counts[0], counts[1])
}

#[allow(clippy::too_many_arguments)]
fn serving_json(
    tenants: usize,
    ops_per_tenant: usize,
    batch: usize,
    shards: u32,
    total_ops: u64,
    aggregate_ops_per_sec: f64,
    single_ops_per_sec: f64,
    admission: &[u64],
    peak_bytes_per_tenant: f64,
    identical: bool,
    identity_checks: usize,
    stats: ServerStatsReport,
    drill: (u64, u64),
    fault_profile: &str,
    lossy: Option<LossyStats>,
) -> JsonValue {
    let efficiency = if single_ops_per_sec > 0.0 {
        aggregate_ops_per_sec / single_ops_per_sec
    } else {
        0.0
    };
    let faults = JsonValue::object()
        .field("profile", fault_profile)
        .field("drops", lossy.map_or(0, |l| l.drops))
        .field("dups", lossy.map_or(0, |l| l.dups))
        .field("retries", lossy.map_or(0, |l| l.retries));
    JsonValue::object()
        .field("protocol_version", u64::from(PROTOCOL_VERSION))
        .field("tenants", tenants as u64)
        .field("ops_per_tenant", ops_per_tenant as u64)
        .field("batch", batch as u64)
        .field("shards", u64::from(shards))
        .field("total_ops", total_ops)
        .field("aggregate_ops_per_sec", aggregate_ops_per_sec)
        .field("single_tenant_ops_per_sec", single_ops_per_sec)
        .field("multi_tenant_efficiency", efficiency)
        .field("p50_admission_ns", percentile(admission, 0.50))
        .field("p99_admission_ns", percentile(admission, 0.99))
        .field("p999_admission_ns", percentile(admission, 0.999))
        .field("admission_samples", admission.len() as u64)
        .field("peak_bytes_per_tenant", peak_bytes_per_tenant)
        .field("coresets_bit_identical", identical)
        .field("identity_checks", identity_checks as u64)
        .field("evictions", stats.evictions)
        .field("restores", stats.restores)
        .field("overloaded", stats.overloaded)
        .field(
            "overload_drill",
            JsonValue::object()
                .field("reject_overloaded", drill.0)
                .field("shed_evictions", drill.1),
        )
        .field("faults", faults)
}

/// The `"migration"` section: a 3-server in-memory fleet, every tenant
/// live-migrated mid-stream (the next insert lands inside the frozen
/// window, so the replay queue genuinely carries ops) and one server
/// drained at the end — with the served coresets compared bit-for-bit
/// against locally rebuilt never-migrated pipelines. `bench_guard`
/// hard-gates the identity bit, ceilings the cutover p99, and checks
/// the replay-queue peak against its bound.
fn migration_json(schedules: &[Schedule], fault_profile: &str) -> JsonValue {
    const SERVERS: [u32; 3] = [1, 2, 3];
    const CHUNK_BYTES: u32 = 4096;
    let subset = &schedules[..schedules.len().min(64)];
    let plan = FaultPlan::parse(fault_profile).unwrap_or_else(|e| panic!("{e}"));
    let mut fleet = Fleet::new(plan);
    for id in SERVERS {
        fleet.insert_server(id, Box::new(CoresetService::new(ServeConfig::default())));
    }
    for (t, s) in subset.iter().enumerate() {
        fleet.open(t as u64, s.spec).expect("open tenant");
    }

    // The interleaved drive, with a live migration wrapped around every
    // tenant's middle batch: freeze + ship before it, drain + cut over
    // after it.
    let mut cutover_ns: Vec<u64> = Vec::new();
    let mut migrations = 0u64;
    let rounds = subset.iter().map(|s| s.batches.len()).max().unwrap_or(0);
    for round in 0..rounds {
        for (t, s) in subset.iter().enumerate() {
            let id = t as u64;
            let migrate_here = round == s.batches.len() / 2;
            if migrate_here {
                let from = fleet.owner(id).expect("owner");
                let to =
                    SERVERS[(SERVERS.iter().position(|&x| x == from).unwrap() + 1) % SERVERS.len()];
                assert!(
                    fleet
                        .migrate_begin(id, to, CHUNK_BYTES)
                        .expect("migrate_begin"),
                    "no old peers, no budgets: the snapshot must land"
                );
            }
            if let Some(batch) = s.batches.get(round) {
                fleet.insert(id, batch).expect("insert batch");
            }
            if migrate_here {
                let t0 = Instant::now();
                let report = fleet.migrate_finish(id).expect("migrate_finish");
                cutover_ns.push(t0.elapsed().as_nanos() as u64);
                assert!(report.committed, "in-memory cutover must commit");
                migrations += 1;
            }
        }
    }
    for (t, s) in subset.iter().enumerate() {
        fleet
            .delete(t as u64, &s.batches[s.delete_batch])
            .expect("delete batch");
    }

    // Decommission drill: drain one server, rebalancing its tenants
    // across the shrunken ring.
    let drained = fleet
        .drain(SERVERS[2], CHUNK_BYTES)
        .expect("drain")
        .iter()
        .filter(|r| r.committed)
        .count() as u64;

    // Bit-identity after 1–2 migrations per tenant: every served
    // coreset against its never-migrated local reference.
    let mut identical = true;
    for (t, s) in subset.iter().enumerate() {
        let (_o, pts) = fleet.query(t as u64).expect("identity query");
        if !served_matches_reference(&pts, &s.reference_coreset()) {
            eprintln!("serve_bench: migrated tenant {t} DIVERGED from reference");
            identical = false;
        }
    }

    cutover_ns.sort_unstable();
    let stats = fleet.migration_stats();
    let faults = JsonValue::object()
        .field("profile", fault_profile)
        .field("drops", fleet.stats.drops)
        .field("dups", fleet.stats.dups)
        .field("retries", fleet.stats.retries);
    eprintln!(
        "serve_bench: migration {} tenants × {migrations} cutovers + {drained} drained \
         (p99 cutover {}ns, replay peak {}, identical: {identical})",
        subset.len(),
        percentile(&cutover_ns, 0.99),
        stats.replay_queue_peak,
    );
    assert!(identical, "migrated coresets must be bit-identical");
    JsonValue::object()
        .field("fleet_servers", SERVERS.len() as u64)
        .field("tenants", subset.len() as u64)
        .field("chunk_bytes", u64::from(CHUNK_BYTES))
        .field("migrations", migrations)
        .field("drained", drained)
        .field("cutovers", stats.cutovers)
        .field("chunks", stats.chunks_in)
        .field("replayed_ops", stats.replayed_ops)
        .field("replay_queue_peak", stats.replay_queue_peak)
        .field("replay_queue_max_ops", REPLAY_QUEUE_MAX_OPS)
        .field("aborts", stats.aborts)
        .field("p50_cutover_ns", percentile(&cutover_ns, 0.50))
        .field("p99_cutover_ns", percentile(&cutover_ns, 0.99))
        .field("coresets_bit_identical", identical)
        .field("identity_checks", subset.len() as u64)
        .field("faults", faults)
}

/// Replaces (or appends) one top-level key of a parsed BENCH document,
/// preserving every other key and their order. `JsonValue` has no
/// mutation API, so the object is rebuilt pair-by-pair.
fn merge_section(doc: &JsonValue, key: &str, section: JsonValue) -> JsonValue {
    let pairs = doc
        .as_object()
        .expect("BENCH file must be a JSON object at top level");
    let mut out = JsonValue::object();
    let mut replaced = false;
    for (k, value) in pairs {
        if k == key {
            out = out.field(k, section.clone());
            replaced = true;
        } else {
            out = out.field(k, value.clone());
        }
    }
    if !replaced {
        out = out.field(key, section);
    }
    out
}

/// One observability-overhead drive: fresh service, the same schedule
/// subset, with the *service-plane* recorders in the given state. The
/// global metrics flag is on for both legs — the backend pipeline's own
/// instrumentation costs the same on each side, so the ratio isolates
/// exactly what this PR's service plane adds. Returns ops/s. Resets the
/// global registries first so the final enabled run leaves exactly one
/// drive's worth of SLO data behind for the percentile report and the
/// `--prom` export.
fn obs_drive(schedules: &[Schedule], metrics_on: bool) -> f64 {
    sbc_obs::reset();
    sbc_obs::svc::reset();
    sbc_obs::set_enabled(true);
    sbc_obs::svc::set_metrics_enabled(metrics_on);
    let mut client = Client::new(InProcess::new(CoresetService::new(ServeConfig::default())));
    client.hello().expect("hello");
    let (ops, secs) = drive(&mut client, schedules, 16, 64);
    sbc_obs::set_enabled(false);
    sbc_obs::svc::set_metrics_enabled(true);
    ops as f64 / secs
}

/// The `"service_obs"` section: the instrumentation-overhead comparison
/// plus request-latency percentiles out of the per-tenant SLO
/// histograms. Runs are interleaved (off, on, off, on, …) and best-of
/// so a transient stall on one side doesn't masquerade as overhead.
fn service_obs_json(schedules: &[Schedule], shards: u32, slow_dump_dir: Option<&str>) -> JsonValue {
    // Feature probe: with `obs` compiled out the flag can never stick,
    // so the ratio below compares two identical no-op builds.
    sbc_obs::set_enabled(true);
    let feature_enabled = sbc_obs::svc::metrics_active();
    sbc_obs::set_enabled(false);

    let subset = &schedules[..schedules.len().min(256)];
    let mut off = 0.0f64;
    let mut on = 0.0f64;
    for _ in 0..3 {
        off = off.max(obs_drive(subset, false));
        on = on.max(obs_drive(subset, true));
    }
    let overhead_ratio = if off > 0.0 { on / off } else { 0.0 };

    // The last enabled drive's insert-latency histogram (the dominant
    // request kind in the schedule).
    let class = if shards > 1 { "sharded" } else { "single" };
    let name = format!("svc.latency.{class}.insert");
    let snap = sbc_obs::snapshot();
    let hist = snap.histogram(&name).cloned().unwrap_or_default();

    // One extra untimed instrumented run with the deterministic
    // slow-request probe armed, purely to produce a dump artifact. The
    // probe rate is sized to the run: a 32-tenant drive issues a few
    // hundred requests, so 1-in-64 guarantees several dumps while a
    // production-ish 1-in-512 would leave a small smoke run empty.
    if let Some(dir) = slow_dump_dir {
        std::fs::create_dir_all(dir).expect("create slow-dump dir");
        sbc_obs::trace::set_enabled(true);
        sbc_obs::trace::set_crash_dir(Some(dir.into()));
        sbc_obs::svc::set_slow_request(sbc_obs::svc::SlowRequestConfig {
            threshold_ns: 0,
            probe_seed: 0x5b0c,
            probe_every: 64,
            max_dumps: 0,
        });
        let _ = obs_drive(&subset[..subset.len().min(32)], true);
        sbc_obs::svc::set_slow_request(sbc_obs::svc::SlowRequestConfig::DISABLED);
        sbc_obs::trace::set_enabled(false);
        sbc_obs::trace::set_crash_dir(None);
    }

    JsonValue::object()
        .field("feature_enabled", feature_enabled)
        .field("metrics_disabled_ops_per_sec", off)
        .field("metrics_enabled_ops_per_sec", on)
        .field("overhead_ratio", overhead_ratio)
        .field("p50_request_ns", hist.quantile(0.50))
        .field("p99_request_ns", hist.quantile(0.99))
        .field("p999_request_ns", hist.quantile(0.999))
        .field("request_samples", hist.count)
        .field("slow_dumps", sbc_obs::svc::slow_dumps())
}

fn main() {
    let mut tenants = 1200usize;
    let mut ops_per_tenant = 48usize;
    let mut batch = 16usize;
    let mut shards = 1u32;
    let mut seed = 17u64;
    let mut identity_checks = 3usize;
    let mut fault_profile = "none".to_string();
    let mut json_out: Option<String> = None;
    let mut merge_into: Option<String> = None;
    let mut prom_out: Option<String> = None;
    let mut slow_dump_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tenants" => {
                tenants = args
                    .next()
                    .expect("--tenants needs a count")
                    .parse()
                    .expect("--tenants takes a positive integer");
                assert!(tenants > 0, "--tenants takes a positive integer");
            }
            "--ops-per-tenant" => {
                ops_per_tenant = args
                    .next()
                    .expect("--ops-per-tenant needs a count")
                    .parse()
                    .expect("--ops-per-tenant takes a positive integer");
                assert!(ops_per_tenant > 1, "--ops-per-tenant needs at least 2 ops");
            }
            "--batch" => {
                batch = args
                    .next()
                    .expect("--batch needs a size")
                    .parse()
                    .expect("--batch takes a positive integer");
                assert!(batch > 0, "--batch takes a positive integer");
            }
            "--shards" => {
                shards = args
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .expect("--shards takes a positive integer");
                assert!(shards > 0, "--shards takes a positive integer");
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs an integer")
                    .parse()
                    .expect("--seed takes an integer");
            }
            "--identity-checks" => {
                identity_checks = args
                    .next()
                    .expect("--identity-checks needs a count")
                    .parse()
                    .expect("--identity-checks takes an integer");
            }
            "--fault-profile" => {
                fault_profile = args.next().expect("--fault-profile needs a profile name");
            }
            "--json" => json_out = Some(args.next().expect("--json needs a path")),
            "--merge-into" => merge_into = Some(args.next().expect("--merge-into needs a path")),
            "--prom" => prom_out = Some(args.next().expect("--prom needs a path")),
            "--slow-dump-dir" => {
                slow_dump_dir = Some(args.next().expect("--slow-dump-dir needs a path"));
            }
            flag => panic!("unknown flag {flag}"),
        }
    }
    let plan = FaultPlan::parse(&fault_profile).unwrap_or_else(|e| panic!("{e}"));

    let schedules: Vec<Schedule> = (0..tenants as u64)
        .map(|t| Schedule::new(t, seed, shards, ops_per_tenant, batch))
        .collect();

    // Phase 1 — single-tenant baseline: tenant 0's schedule, alone.
    let mut single = Client::new(InProcess::new(CoresetService::new(ServeConfig::default())));
    single.hello().expect("hello");
    let (single_ops, single_secs) = drive(&mut single, &schedules[..1], 1, 0);
    let single_ops_per_sec = single_ops as f64 / single_secs;

    // Phase 2 — the multi-tenant run, optionally through the lossy
    // fault-replaying transport.
    eprintln!(
        "serve_bench: {tenants} tenants × {ops_per_tenant} ops (batch {batch}, shards {shards}, \
         faults {fault_profile})"
    );
    let service = CoresetService::new(ServeConfig::default());
    let (total_ops, multi_secs, admission, stats, lossy_stats, served);
    if plan.is_active() {
        let mut client = Client::new(Lossy::new(service, plan, 1));
        client.hello().expect("hello");
        let (ops, secs) = drive(&mut client, &schedules, 16, 64);
        served = sample_queries(&mut client, &schedules, identity_checks);
        let transport = client.transport_mut();
        lossy_stats = Some(transport.stats);
        let svc = transport.service_mut();
        let mut ns = svc.take_admission_ns();
        ns.sort_unstable();
        (total_ops, multi_secs, admission, stats) = (ops, secs, ns, svc.server_stats());
    } else {
        let mut client = Client::new(InProcess::new(service));
        client.hello().expect("hello");
        let (ops, secs) = drive(&mut client, &schedules, 16, 64);
        served = sample_queries(&mut client, &schedules, identity_checks);
        lossy_stats = None;
        let svc = client.transport_mut().service_mut();
        let mut ns = svc.take_admission_ns();
        ns.sort_unstable();
        (total_ops, multi_secs, admission, stats) = (ops, secs, ns, svc.server_stats());
    }
    let aggregate_ops_per_sec = total_ops as f64 / multi_secs;

    // Bit-identity: the served coresets against locally rebuilt
    // single-tenant pipelines with the identical schedule.
    let mut identical = true;
    for (t, reply) in &served {
        let reference = schedules[*t].reference_coreset();
        if !served_matches_reference(reply, &reference) {
            eprintln!("serve_bench: tenant {t} served coreset DIVERGED from reference");
            identical = false;
        }
    }

    let drill = overload_drill(&schedules, 256 * 1024);
    let peak_bytes_per_tenant = stats.peak_measured_bytes as f64 / tenants as f64;

    let serving = serving_json(
        tenants,
        ops_per_tenant,
        batch,
        shards,
        total_ops,
        aggregate_ops_per_sec,
        single_ops_per_sec,
        &admission,
        peak_bytes_per_tenant,
        identical,
        served.len(),
        stats,
        drill,
        &fault_profile,
        lossy_stats,
    );
    eprintln!(
        "serve_bench: {total_ops} ops in {multi_secs:.2}s ({aggregate_ops_per_sec:.0} ops/s, \
         efficiency {:.3}, p99 admission {}ns, identical: {identical})",
        aggregate_ops_per_sec / single_ops_per_sec,
        percentile(&admission, 0.99),
    );
    assert!(identical, "served coresets must be bit-identical");

    // Phase 3 — the observability-overhead comparison (and, when the
    // prom export is requested, one validated scrape of the SLO data
    // the final instrumented drive left behind).
    let service_obs = service_obs_json(&schedules, shards, slow_dump_dir.as_deref());
    eprintln!(
        "serve_bench: service_obs overhead ratio {:.3} (p99 request {}ns, feature {})",
        service_obs
            .get("overhead_ratio")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0),
        service_obs
            .get("p99_request_ns")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        if service_obs
            .get("feature_enabled")
            .and_then(JsonValue::as_bool)
            == Some(true)
        {
            "on"
        } else {
            "off"
        },
    );
    // Phase 4 — the 3-server fleet: live migrations mid-stream, a
    // drain/rebalance, and the migrated-vs-reference identity check.
    let migration = migration_json(&schedules, &fault_profile);

    if let Some(path) = &prom_out {
        // `svc::sampled_counters` is gated on the live flag; flip it on
        // just long enough to scrape what the instrumented run recorded.
        sbc_obs::set_enabled(true);
        let mut tl = sbc_obs::timeline::Timeline::new(4);
        tl.sample();
        let text = tl.prometheus();
        sbc_obs::set_enabled(false);
        sbc_obs::timeline::validate_prometheus(&text).expect("exposition must validate");
        std::fs::write(path, text).expect("write Prometheus exposition");
        eprintln!("serve_bench: wrote {path}");
    }

    if let Some(path) = &merge_into {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--merge-into {path}: {e}"));
        let doc = JsonValue::parse(&text).unwrap_or_else(|e| panic!("--merge-into {path}: {e}"));
        let merged = merge_section(&doc, "serving", serving.clone());
        let merged = merge_section(&merged, "service_obs", service_obs.clone());
        let merged = merge_section(&merged, "migration", migration.clone());
        std::fs::write(path, merged.render_pretty() + "\n").expect("write merged BENCH file");
        eprintln!("serve_bench: merged \"serving\" + \"service_obs\" + \"migration\" into {path}");
    }
    if let Some(path) = &json_out {
        let doc = JsonValue::object()
            .field("serving", serving)
            .field("service_obs", service_obs)
            .field("migration", migration);
        std::fs::write(path, doc.render_pretty() + "\n").expect("write JSON report");
        eprintln!("serve_bench: wrote {path}");
    }
}
