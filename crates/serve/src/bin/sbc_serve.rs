//! `sbc-serve` — the multi-tenant coreset server.
//!
//! Two modes:
//!
//! * **frame loop** (default): reads `SBCSRV1` request frames from
//!   stdin and writes response frames to stdout until EOF or an
//!   [`ApiRequest::Shutdown`] record — the transport a socket wrapper
//!   or test harness drives;
//! * **`--demo`**: self-driving multi-tenant load so the service has
//!   something to show; pair with `--telemetry-out` and watch it live
//!   from a second terminal with `sbc-top` (see the README quickstart).
//!
//! Usage:
//!
//! ```text
//! sbc-serve [--budget-bytes N] [--max-tenants N] [--spill-dir PATH]
//!           [--policy shed|reject] [--max-frame-bytes N]
//!           [--telemetry-out PATH] [--telemetry-every MS]
//!           [--slow-ms N] [--slow-dump-dir PATH]
//!           [--demo] [--tenants N] [--rounds N] [--seed S]
//! ```
//!
//! `--telemetry-out PATH` turns the metrics registry on and writes the
//! rolling JSON timeline to `PATH` plus a Prometheus exposition to the
//! sibling `PATH` with a `.prom` extension. A `--demo` run re-validates
//! that exposition at shutdown and exits nonzero if it is malformed, so
//! CI catches exposition drift the moment it happens. `--slow-ms N`
//! arms the slow-request trigger: any request slower than `N` ms dumps
//! the flight-recorder ring to `slow-<tenant>-<seq>.json` under
//! `--slow-dump-dir` (default: the working directory), bounded by the
//! library's dump budget so an aggressive threshold on a busy server
//! exhausts the budget rather than the disk.

use std::io::{Read, Write};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sbc::api::{frame_responses, ApiError, ApiRequest, ApiResponse, TenantSpec, FRAME_MAGIC};
use sbc::GridParams;
use sbc_serve::{Client, CoresetService, InProcess, OverloadPolicy, ServeConfig};

/// Default cap on a request frame's payload. The header's length field
/// is untrusted input: without a cap a 12-byte header claiming ~4 GiB
/// forces the allocation before any protocol validation runs.
const DEFAULT_MAX_FRAME_BYTES: usize = 64 << 20;

#[global_allocator]
static ALLOC: sbc_obs::alloc::TrackingAlloc = sbc_obs::alloc::TrackingAlloc;

fn main() {
    let mut config = ServeConfig::default();
    let mut max_frame_bytes = DEFAULT_MAX_FRAME_BYTES;
    let mut telemetry_out: Option<String> = None;
    let mut telemetry_every_ms = sbc_obs::timeline::DEFAULT_CADENCE_MS;
    let mut slow_ms = 0u64;
    let mut slow_dump_dir: Option<String> = None;
    let mut demo = false;
    let mut tenants = 64usize;
    let mut rounds = 0usize; // demo rounds; 0 = run until killed
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget-bytes" => {
                config.budget_bytes = args
                    .next()
                    .expect("--budget-bytes needs a byte count")
                    .parse()
                    .expect("--budget-bytes takes an integer");
            }
            "--max-tenants" => {
                config.max_tenants = args
                    .next()
                    .expect("--max-tenants needs a count")
                    .parse()
                    .expect("--max-tenants takes an integer");
            }
            "--spill-dir" => {
                let dir = args.next().expect("--spill-dir needs a path");
                std::fs::create_dir_all(&dir).expect("create spill dir");
                config.spill_dir = Some(dir.into());
            }
            "--policy" => {
                config.policy = match args.next().expect("--policy needs shed|reject").as_str() {
                    "shed" => OverloadPolicy::Shed,
                    "reject" => OverloadPolicy::Reject,
                    other => panic!("unknown policy {other:?} (want shed|reject)"),
                };
            }
            "--max-frame-bytes" => {
                max_frame_bytes = args
                    .next()
                    .expect("--max-frame-bytes needs a byte count")
                    .parse()
                    .expect("--max-frame-bytes takes a positive integer");
                assert!(max_frame_bytes > 0, "--max-frame-bytes must be positive");
            }
            "--telemetry-out" => {
                telemetry_out = Some(args.next().expect("--telemetry-out needs a path"));
            }
            "--telemetry-every" => {
                telemetry_every_ms = args
                    .next()
                    .expect("--telemetry-every needs a cadence in ms")
                    .parse()
                    .expect("--telemetry-every takes a positive integer");
            }
            "--slow-ms" => {
                slow_ms = args
                    .next()
                    .expect("--slow-ms needs a duration in ms")
                    .parse()
                    .expect("--slow-ms takes a positive integer");
            }
            "--slow-dump-dir" => {
                let dir = args.next().expect("--slow-dump-dir needs a path");
                std::fs::create_dir_all(&dir).expect("create slow-dump dir");
                slow_dump_dir = Some(dir);
            }
            "--demo" => demo = true,
            "--tenants" => {
                tenants = args
                    .next()
                    .expect("--tenants needs a count")
                    .parse()
                    .expect("--tenants takes a positive integer");
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .expect("--rounds needs a count")
                    .parse()
                    .expect("--rounds takes an integer");
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs an integer")
                    .parse()
                    .expect("--seed takes an integer");
            }
            flag => panic!("unknown flag {flag}"),
        }
    }

    // Telemetry implies metrics: the sampler would otherwise export an
    // empty registry. The exposition lands next to the JSON timeline so
    // one flag wires up both scrape formats.
    let prom_out = telemetry_out
        .as_ref()
        .map(|path| std::path::Path::new(path).with_extension("prom"));
    let sampler = telemetry_out.as_ref().map(|path| {
        sbc_obs::set_enabled(true);
        sbc_obs::timeline::Sampler::start(
            Duration::from_millis(telemetry_every_ms),
            sbc_obs::timeline::DEFAULT_CAPACITY,
            Some(path.into()),
            prom_out.clone(),
        )
    });
    if slow_ms > 0 || slow_dump_dir.is_some() {
        sbc_obs::trace::set_enabled(true);
        if let Some(dir) = &slow_dump_dir {
            sbc_obs::trace::set_crash_dir(Some(dir.into()));
        }
        sbc_obs::svc::set_slow_request(sbc_obs::svc::SlowRequestConfig {
            threshold_ns: slow_ms.saturating_mul(1_000_000),
            probe_seed: seed,
            probe_every: 0,
            max_dumps: 0, // the library's default budget
        });
    }

    let service = CoresetService::new(config);
    if demo {
        run_demo(service, tenants, rounds, seed);
    } else {
        run_frame_loop(
            service,
            std::io::stdin().lock(),
            std::io::stdout().lock(),
            max_frame_bytes,
        );
    }
    if let Some(s) = sampler {
        s.stop();
    }
    // A demo run doubles as a self-check of the scrape surface: the
    // exposition the sampler just flushed must parse, or the process
    // fails loudly instead of publishing garbage for scrapers.
    if demo {
        if let Some(prom) = &prom_out {
            let body = std::fs::read_to_string(prom).unwrap_or_default();
            if let Err(e) = sbc_obs::timeline::validate_prometheus(&body) {
                eprintln!("sbc-serve: malformed Prometheus exposition at {prom:?}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// stdin/stdout frame loop: one response frame per request frame. A
/// header claiming more than `max_frame_bytes` of payload is answered
/// with a coded `FrameTooLarge` error and closes the connection —
/// nothing is allocated or read for it, and with the payload unread
/// there is no resynchronizing the stream anyway.
fn run_frame_loop<R: Read, W: Write>(
    mut service: CoresetService,
    mut input: R,
    mut output: W,
    max_frame_bytes: usize,
) {
    loop {
        // A frame is self-delimiting: 8B magic + u32 payload length.
        let mut header = [0u8; 12];
        match input.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => panic!("stdin: {e}"),
        }
        if header[..8] != FRAME_MAGIC {
            // Answer the coded error the service produces for bad magic,
            // then stop — the stream is not speaking our protocol.
            let reply = service.handle_frame(&header);
            output.write_all(&reply).expect("stdout");
            output.flush().expect("stdout");
            break;
        }
        let payload_len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        if payload_len > max_frame_bytes {
            let err = ApiError::FrameTooLarge {
                payload_len: payload_len as u64,
                max: max_frame_bytes as u64,
            };
            let reply = frame_responses(&[ApiResponse::Error {
                code: err.code(),
                message: err.to_string(),
            }]);
            output.write_all(&reply).expect("stdout");
            output.flush().expect("stdout");
            break;
        }
        let mut frame = header.to_vec();
        frame.resize(12 + payload_len, 0);
        input
            .read_exact(&mut frame[12..])
            .expect("stdin frame body");
        let reply = service.handle_frame(&frame);
        output.write_all(&reply).expect("stdout");
        output.flush().expect("stdout");
        if service.is_shutting_down() {
            break;
        }
    }
}

/// Self-driving load: open `tenants` tenants, then loop rounds of mixed
/// traffic (inserts, deletes, mid-stream queries, explicit evictions)
/// through the real wire format.
fn run_demo(service: CoresetService, tenants: usize, rounds: usize, seed: u64) {
    let mut client = Client::new(InProcess::new(service));
    client.hello().expect("version negotiation");
    let spec = TenantSpec {
        log_delta: 6,
        ..TenantSpec::default()
    };
    let gp = GridParams::from_log_delta(spec.log_delta, spec.dims as usize);
    for t in 0..tenants {
        client
            .open(
                t as u64,
                TenantSpec {
                    seed: seed ^ t as u64,
                    ..spec
                },
            )
            .expect("open tenant");
    }
    eprintln!("sbc-serve demo: {tenants} tenants live; ctrl-c to stop");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut round = 0usize;
    let mut live: Vec<Vec<sbc::Point>> = vec![Vec::new(); tenants];
    while rounds == 0 || round < rounds {
        for (t, held) in live.iter_mut().enumerate() {
            let id = t as u64;
            let batch: Vec<sbc::Point> =
                sbc::geometry::dataset::gaussian_mixture(gp, 16, 2, 0.08, rng.gen());
            client.insert(id, &batch).expect("insert");
            held.extend(batch);
            if held.len() > 64 {
                let dead: Vec<sbc::Point> = held.drain(..16).collect();
                client.delete(id, &dead).expect("delete");
            }
            if rng.gen_range(0..16u32) == 0 {
                let (_o, points) = client.query(id).expect("query");
                sbc_obs::counter!("serve.demo.coreset_points").add(points.len() as u64);
            }
            if rng.gen_range(0..64u32) == 0 {
                client.evict(id).expect("evict");
            }
        }
        round += 1;
        std::thread::sleep(Duration::from_millis(50));
    }
    // Exit through the protocol so the loop shape matches production.
    let _ = client.call_batch(&[ApiRequest::Shutdown]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc::api::{frame_requests, unframe_responses};

    fn loop_over(input: &[u8], max_frame_bytes: usize) -> Vec<u8> {
        let mut out = Vec::new();
        run_frame_loop(
            CoresetService::new(ServeConfig::default()),
            input,
            &mut out,
            max_frame_bytes,
        );
        out
    }

    #[test]
    fn frame_loop_serves_and_shuts_down() {
        let mut input = frame_requests(&[ApiRequest::ServerStats]);
        input.extend_from_slice(&frame_requests(&[ApiRequest::Shutdown]));
        let out = loop_over(&input, DEFAULT_MAX_FRAME_BYTES);
        // Two reply frames, back to back; the second acknowledges the
        // shutdown that ended the loop.
        let magic_at: Vec<usize> = (0..out.len().saturating_sub(7))
            .filter(|&i| out[i..i + 8] == FRAME_MAGIC)
            .collect();
        assert_eq!(magic_at.len(), 2, "two reply frames");
        let first = unframe_responses(&out[..magic_at[1]]).expect("first reply");
        assert!(matches!(first[0], ApiResponse::ServerStatsReply { .. }));
        let second = unframe_responses(&out[magic_at[1]..]).expect("second reply");
        assert!(matches!(second[0], ApiResponse::ShuttingDown));
    }

    #[test]
    fn oversized_header_is_refused_without_allocating() {
        // An adversarial header claiming u32::MAX bytes of payload: the
        // loop must answer a coded FrameTooLarge (204) and close, not
        // resize a buffer to the claimed length.
        let mut input = FRAME_MAGIC.to_vec();
        input.extend_from_slice(&u32::MAX.to_le_bytes());
        // Trailing garbage the loop must never reach for.
        input.extend_from_slice(&[0u8; 64]);
        let out = loop_over(&input, 1 << 20);
        let resps = unframe_responses(&out).expect("reply frame");
        assert!(
            matches!(resps.as_slice(), [ApiResponse::Error { code: 204, .. }]),
            "{resps:?}"
        );
    }

    #[test]
    fn at_cap_frames_still_serve() {
        let frame = frame_requests(&[ApiRequest::ServerStats]);
        let payload_len = frame.len() - 12;
        let out = loop_over(&frame, payload_len);
        let resps = unframe_responses(&out).expect("reply frame");
        assert!(matches!(
            resps.as_slice(),
            [ApiResponse::ServerStatsReply { .. }]
        ));
    }
}
