//! The tenant-multiplexing service core: slot table, admission control,
//! eviction/restore, and the frame/envelope entry points.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sbc::api::{
    frame_responses, negotiate, unframe_requests, ApiError, ApiRequest, ApiResponse, CoresetPoint,
    HealthReport, ReplayOp, ServerStatsReport, TenantId, TenantSpec, TenantStats,
    MAX_MIGRATION_CHUNK_BYTES,
};
use sbc::distributed::wire::Envelope;
use sbc::streaming::codec::{from_bytes, to_bytes};
use sbc::{
    Coreset, CoresetParams, Point, SbcError, ShardedIngest, Snapshot, StreamCoresetBuilder,
    StreamOp, StreamParams,
};
use sbc_obs::svc::{self, MigrationEvent, RequestClass, RequestId, RequestTag, TenantState};
use sbc_obs::trace;

/// What to do with a mutating request that would run past the memory
/// budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Refuse with [`ApiResponse::Overloaded`] and apply nothing.
    Reject,
    /// First shed load — evict the fattest *other* tenants to the spill
    /// store until back under budget — and refuse only if shedding
    /// cannot get there.
    #[default]
    Shed,
}

/// Service configuration.
#[derive(Clone, Debug, Default)]
pub struct ServeConfig {
    /// Memory budget over the sum of live tenants' `measured_bytes`
    /// (0 = unlimited). The admission-control threshold.
    pub budget_bytes: usize,
    /// Cap on concurrently *known* tenants, live or evicted
    /// (0 = unlimited).
    pub max_tenants: usize,
    /// Where evicted tenants spill. `None` keeps eviction blobs in
    /// memory — useful for tests, useless for actually freeing the
    /// budget's underlying RAM, so real deployments set a directory.
    pub spill_dir: Option<PathBuf>,
    /// Overload behavior. Defaults to [`OverloadPolicy::Shed`].
    pub policy: OverloadPolicy,
    /// Cap on one inbound migration transfer's total container bytes
    /// (0 = [`DEFAULT_MAX_MIGRATION_BYTES`]). A hostile
    /// `ChunkedCheckpoint` header claiming more is refused before any
    /// buffering.
    pub max_migration_bytes: usize,
}

/// One tenant's pipeline: a single builder, or a sharded ingest when the
/// spec asked for horizontal composition.
enum Backend {
    // Boxed: a builder is ~600 bytes of inline ladder state, and the
    // slot table holds thousands of these enums.
    Single(Box<StreamCoresetBuilder>),
    Sharded(ShardedIngest),
}

/// Derives the validated parameter pair from a wire spec, so a bad spec
/// fails with a coded parameter error instead of a panic downstream. The
/// derivation itself is [`sbc::api::tenant_pipeline`] — part of the
/// protocol contract, shared with reference pipelines on the bench side.
fn pipeline_params(spec: &TenantSpec) -> Result<(CoresetParams, StreamParams), SbcError> {
    sbc::api::tenant_pipeline(spec)
}

impl Backend {
    /// Builds a fresh pipeline. The construction mirrors what a
    /// standalone caller writes (`StdRng::seed_from_u64(seed)` /
    /// `ShardedIngest::new(…, seed)`), which is what makes a tenant's
    /// coreset bit-identical to an equivalent single-tenant run.
    fn build(spec: &TenantSpec) -> Result<Backend, SbcError> {
        let (params, sparams) = pipeline_params(spec)?;
        Ok(if spec.shards <= 1 {
            let mut rng = StdRng::seed_from_u64(spec.seed);
            Backend::Single(Box::new(StreamCoresetBuilder::new(
                params, sparams, &mut rng,
            )))
        } else {
            Backend::Sharded(ShardedIngest::new(params, sparams, spec.seed)?)
        })
    }

    fn insert_batch(&mut self, points: &[Point]) {
        match self {
            Backend::Single(b) => b.insert_batch(points),
            Backend::Sharded(s) => s.insert_batch(points),
        }
    }

    fn delete_batch(&mut self, points: &[Point]) {
        let ops: Vec<StreamOp> = points.iter().map(|p| StreamOp::Delete(p.clone())).collect();
        match self {
            Backend::Single(b) => b.process_all(&ops),
            Backend::Sharded(s) => s.process_all(&ops),
        }
    }

    fn net_count(&self) -> i64 {
        match self {
            Backend::Single(b) => b.net_count(),
            Backend::Sharded(s) => s.net_count(),
        }
    }

    fn ops_seen(&self) -> u64 {
        match self {
            Backend::Single(b) => b.ops_seen(),
            Backend::Sharded(s) => s.ops_seen(),
        }
    }

    fn measured_bytes(&self) -> usize {
        match self {
            Backend::Single(b) => b.space_report().measured_bytes,
            Backend::Sharded(s) => s.space_report().total.measured_bytes,
        }
    }

    fn finish_ref(&self) -> Result<Coreset, SbcError> {
        match self {
            Backend::Single(b) => Ok(b.finish_ref()?),
            Backend::Sharded(s) => s.finish_ref(),
        }
    }

    /// One checkpoint blob per shard (a single builder is one shard).
    fn checkpoint_blobs(&self) -> Result<Vec<Vec<u8>>, SbcError> {
        match self {
            Backend::Single(b) => Ok(vec![b.checkpoint()?.to_bytes()]),
            Backend::Sharded(s) => (0..s.shards())
                .map(|i| Ok(s.checkpoint_shard(i)?.to_bytes()))
                .collect(),
        }
    }

    /// Inverse of [`Backend::checkpoint_blobs`]: bit-identical restore.
    fn restore(spec: &TenantSpec, blobs: &[Vec<u8>]) -> Result<Backend, SbcError> {
        if spec.shards <= 1 {
            let [blob] = blobs else {
                return Err(ApiError::EvictIo {
                    message: format!("expected 1 shard blob, found {}", blobs.len()),
                }
                .into());
            };
            Ok(Backend::Single(Box::new(StreamCoresetBuilder::restore(
                &Snapshot::from_bytes(blob)?,
            )?)))
        } else {
            if blobs.len() != spec.shards as usize {
                return Err(ApiError::EvictIo {
                    message: format!(
                        "expected {} shard blobs, found {}",
                        spec.shards,
                        blobs.len()
                    ),
                }
                .into());
            }
            let mut ingest = match Backend::build(spec)? {
                Backend::Sharded(s) => s,
                Backend::Single(_) => unreachable!("shards > 1 builds a sharded backend"),
            };
            for (i, blob) in blobs.iter().enumerate() {
                ingest.restore_shard(i, &Snapshot::from_bytes(blob)?)?;
            }
            Ok(Backend::Sharded(ingest))
        }
    }
}

/// Where an evicted tenant's checkpoint container lives.
enum Spill {
    Disk(PathBuf),
    Memory(Vec<u8>),
}

/// Frozen outbound state of a tenant mid-migration: the snapshot split
/// into chunks at the seq barrier, plus the replay queue of ops that
/// arrived after the barrier (double-buffered — also applied to the
/// live backend, so local reads stay fresh and an abort loses nothing).
struct MigrationOut {
    chunks: Vec<Vec<u8>>,
    total_bytes: u64,
    measured_bytes: u64,
    seq_barrier: u64,
    replay: VecDeque<ReplayOp>,
    /// Point-operations currently queued (bounded by
    /// [`REPLAY_QUEUE_MAX_OPS`]).
    queued_ops: u64,
}

struct Tenant {
    spec: TenantSpec,
    backend: Backend,
    /// Cached `measured_bytes`, refreshed after every mutation — the
    /// service's running total is the sum of these caches, so admission
    /// control is O(1) per request instead of O(tenants) space walks.
    measured: usize,
    peak_measured: usize,
    /// `Some` while this tenant is frozen for outbound migration.
    migration: Option<MigrationOut>,
}

impl Tenant {
    fn stats(&self, shards: u32) -> TenantStats {
        TenantStats {
            net_count: self.backend.net_count(),
            ops_seen: self.backend.ops_seen(),
            measured_bytes: self.measured as u64,
            peak_measured_bytes: self.peak_measured as u64,
            shards,
            evicted: false,
        }
    }
}

enum Slot {
    Live(Tenant),
    Evicted {
        spec: TenantSpec,
        spill: Spill,
        bytes: u64,
        /// The tenant's `measured_bytes` at eviction time. Restores are
        /// bit-identical, so this is exactly the footprint a restore
        /// brings back — the headroom the admission decision charges
        /// *before* restoring.
        measured: usize,
    },
    /// Inbound migration in progress: checkpoint chunks assembling in
    /// order. The manifest's `measured_bytes` was charged against the
    /// budget when chunk 0 was admitted (the same reservation a restore
    /// pays), and is released when the final chunk restores — or the
    /// transfer is aborted/closed.
    Restoring {
        spec: TenantSpec,
        total_chunks: u32,
        total_bytes: u64,
        /// The admission reservation charged into `total_measured`.
        measured: usize,
        next_chunk: u32,
        buf: Vec<u8>,
    },
    /// Tombstone after cutover: the tenant now lives on `peer`, and
    /// every data request is answered with a [`ApiResponse::Moved`]
    /// redirect. `Close` removes the tombstone.
    Moved {
        peer: u32,
    },
}

/// The multi-tenant service core.
///
/// Deliberately transport-free: [`CoresetService::handle_frame`] maps
/// request bytes to response bytes, and the binaries/tests/bench wrap
/// it in whatever I/O they need (stdin/stdout, in-process, the lossy
/// fault-replaying transport).
pub struct CoresetService {
    config: ServeConfig,
    slots: HashMap<TenantId, Slot>,
    /// Sum of live tenants' cached `measured` (admission numerator).
    total_measured: usize,
    peak_measured: usize,
    ops_total: u64,
    overloaded: u64,
    evictions: u64,
    restores: u64,
    /// Evictions forced by the shed admission policy (a subset of
    /// `evictions`).
    shed_evictions: u64,
    /// Live slots, maintained at every lifecycle transition so
    /// [`CoresetService::server_stats`] and the per-request gauge
    /// publish are O(1) instead of O(tenants) slot walks.
    live_tenants: u64,
    /// Evicted slots (same maintenance).
    evicted_tenants: u64,
    /// Bytes currently parked in spill containers by evicted tenants.
    spill_bytes: u64,
    /// Frames/envelopes that failed to decode (bad magic, truncated,
    /// malformed record).
    frame_errors: u64,
    /// Records handled — the [`RequestId::seq`] source and the health
    /// report's `requests_total`.
    request_seq: u64,
    /// Service start time (the health report's uptime).
    started: Instant,
    shutting_down: bool,
    /// Nanoseconds the admission decision took, per admitted-or-refused
    /// request — drained by [`CoresetService::take_admission_ns`]
    /// (serve_bench's p99 source). A bounded ring: once
    /// [`ADMISSION_NS_CAP`] samples accumulate undrained, the oldest
    /// are overwritten, so a production loop that never drains cannot
    /// grow the service without bound.
    admission_ns: Vec<u64>,
    /// Overwrite cursor into `admission_ns` once the ring is full.
    admission_ns_at: usize,
    /// Per-client `(last_seq, cached response envelope)` — the
    /// idempotency window that makes duplicated/retried envelope
    /// deliveries safe. One entry deep per machine, matching the
    /// transport's immediate-retry behavior, and bounded to
    /// [`DEDUP_MAX_MACHINES`] machines (first-seen FIFO eviction via
    /// `dedup_order`): a peer cycling machine ids can displace idle
    /// windows but never grow the map without bound. A displaced
    /// machine merely loses its dedup window — the same contract as a
    /// brand-new peer.
    dedup: HashMap<u32, (u64, Vec<u8>)>,
    /// First-seen order of `dedup` keys, for FIFO displacement.
    dedup_order: VecDeque<u32>,
    /// Migration counters (see [`MigrationStats`]).
    migration: MigrationStats,
}

/// Capacity of the admission-latency ring ([`CoresetService::take_admission_ns`]).
const ADMISSION_NS_CAP: usize = 64 * 1024;

/// Most distinct envelope machines the dedup window tracks at once.
const DEDUP_MAX_MACHINES: usize = 1024;

/// Default cap on one inbound migration transfer's container bytes
/// ([`ServeConfig::max_migration_bytes`] = 0).
pub const DEFAULT_MAX_MIGRATION_BYTES: usize = 64 << 20;

/// Bound on point-operations buffered in a migrating tenant's replay
/// queue. A mutation that would overflow it is refused with
/// [`ApiError::ReplayOverflow`] (nothing applied) — the queue is the
/// only unbounded-growth risk the double-buffer protocol introduces,
/// so it is capped and the cutover latency gate in `bench_guard` keeps
/// the drain loop honest.
pub const REPLAY_QUEUE_MAX_OPS: u64 = 64 * 1024;

/// Point-in-time migration counters, drained by fleet benches and the
/// oracle tests via [`CoresetService::migration_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Outbound freezes ([`ApiRequest::MigrateOut`] accepted).
    pub migrations_out: u64,
    /// Inbound restores completed (final chunk accepted and restored).
    pub migrations_in: u64,
    /// Checkpoint chunks accepted inbound.
    pub chunks_in: u64,
    /// Ownership flips committed ([`ApiRequest::CutOver`] accepted).
    pub cutovers: u64,
    /// Migrations abandoned ([`ApiRequest::MigrateAbort`] accepted).
    pub aborts: u64,
    /// Point-operations drained from replay queues.
    pub replayed_ops: u64,
    /// High-water mark of any tenant's replay queue (point-operations).
    pub replay_queue_peak: u64,
}

impl CoresetService {
    /// Creates an empty service.
    pub fn new(config: ServeConfig) -> CoresetService {
        CoresetService {
            config,
            slots: HashMap::new(),
            total_measured: 0,
            peak_measured: 0,
            ops_total: 0,
            overloaded: 0,
            evictions: 0,
            restores: 0,
            shed_evictions: 0,
            live_tenants: 0,
            evicted_tenants: 0,
            spill_bytes: 0,
            frame_errors: 0,
            request_seq: 0,
            started: Instant::now(),
            shutting_down: false,
            admission_ns: Vec::new(),
            admission_ns_at: 0,
            dedup: HashMap::new(),
            dedup_order: VecDeque::new(),
            migration: MigrationStats::default(),
        }
    }

    /// Point-in-time migration counters.
    pub fn migration_stats(&self) -> MigrationStats {
        self.migration
    }

    /// The effective cap on one inbound migration transfer's container
    /// bytes.
    fn migration_byte_cap(&self) -> u64 {
        if self.config.max_migration_bytes == 0 {
            DEFAULT_MAX_MIGRATION_BYTES as u64
        } else {
            self.config.max_migration_bytes as u64
        }
    }

    /// True once an [`ApiRequest::Shutdown`] has been handled; server
    /// loops exit after finishing the current frame.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Whole-service accounting (also served as
    /// [`ApiResponse::ServerStatsReply`]).
    pub fn server_stats(&self) -> ServerStatsReport {
        #[cfg(debug_assertions)]
        {
            let (mut live, mut evicted) = (0u64, 0u64);
            for slot in self.slots.values() {
                match slot {
                    Slot::Live(_) => live += 1,
                    Slot::Evicted { .. } => evicted += 1,
                    // Assembling transfers and tombstones are neither.
                    Slot::Restoring { .. } | Slot::Moved { .. } => {}
                }
            }
            debug_assert_eq!(
                (live, evicted),
                (self.live_tenants, self.evicted_tenants),
                "maintained tenant counts drifted from the slot table"
            );
        }
        ServerStatsReport {
            tenants_live: self.live_tenants,
            tenants_evicted: self.evicted_tenants,
            measured_bytes: self.total_measured as u64,
            peak_measured_bytes: self.peak_measured as u64,
            budget_bytes: self.config.budget_bytes as u64,
            ops_total: self.ops_total,
            overloaded: self.overloaded,
            evictions: self.evictions,
            restores: self.restores,
        }
    }

    /// Machine-readable liveness snapshot (also served as
    /// [`ApiResponse::HealthReply`]). Purely observational — nothing in
    /// it feeds back into service decisions.
    pub fn health_report(&self) -> HealthReport {
        let budget = self.config.budget_bytes as u64;
        HealthReport {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests_total: self.request_seq,
            frame_errors: self.frame_errors,
            tenants_live: self.live_tenants,
            tenants_evicted: self.evicted_tenants,
            measured_bytes: self.total_measured as u64,
            budget_bytes: budget,
            budget_headroom_bytes: if budget == 0 {
                u64::MAX
            } else {
                budget.saturating_sub(self.total_measured as u64)
            },
            spill_bytes: self.spill_bytes,
            overloaded: self.overloaded,
            shutting_down: self.shutting_down,
        }
    }

    /// Drains the recorded per-request admission-decision latencies
    /// (the most recent [`ADMISSION_NS_CAP`] decisions — older samples
    /// are overwritten, not accumulated).
    pub fn take_admission_ns(&mut self) -> Vec<u64> {
        self.admission_ns_at = 0;
        std::mem::take(&mut self.admission_ns)
    }

    fn record_admission_ns(&mut self, ns: u64) {
        if self.admission_ns.len() < ADMISSION_NS_CAP {
            self.admission_ns.push(ns);
        } else {
            self.admission_ns[self.admission_ns_at] = ns;
            self.admission_ns_at = (self.admission_ns_at + 1) % ADMISSION_NS_CAP;
        }
    }

    fn spill_path(&self, tenant: TenantId) -> Option<PathBuf> {
        self.config
            .spill_dir
            .as_ref()
            .map(|d| d.join(format!("tenant-{tenant}.sbct")))
    }

    /// Serializes and spills a live tenant, freeing its memory
    /// accounting. Returns the blob size.
    fn evict_tenant(&mut self, tenant: TenantId) -> Result<u64, SbcError> {
        let Some(Slot::Live(t)) = self.slots.get(&tenant) else {
            return Err(ApiError::UnknownTenant { tenant }.into());
        };
        let container = to_bytes(&(t.spec, t.backend.checkpoint_blobs()?));
        let bytes = container.len() as u64;
        let spill = match self.spill_path(tenant) {
            Some(path) => {
                std::fs::write(&path, &container).map_err(|e| ApiError::EvictIo {
                    message: format!("{}: {e}", path.display()),
                })?;
                Spill::Disk(path)
            }
            None => Spill::Memory(container),
        };
        let Some(Slot::Live(t)) = self.slots.remove(&tenant) else {
            unreachable!("checked live above");
        };
        self.total_measured -= t.measured;
        self.slots.insert(
            tenant,
            Slot::Evicted {
                spec: t.spec,
                spill,
                bytes,
                measured: t.measured,
            },
        );
        self.live_tenants -= 1;
        self.evicted_tenants += 1;
        self.spill_bytes += bytes;
        self.evictions += 1;
        sbc_obs::counter!("serve.evictions").incr();
        svc::observe_tenant_state(tenant, TenantState::Evicted, bytes);
        Ok(bytes)
    }

    /// Makes a tenant live, restoring it from its spill if needed.
    /// `Ok(restored)` tells whether a restore happened.
    fn ensure_live(&mut self, tenant: TenantId, rid: RequestId) -> Result<bool, SbcError> {
        match self.slots.get(&tenant) {
            Some(Slot::Live(_)) => return Ok(false),
            None => return Err(ApiError::UnknownTenant { tenant }.into()),
            Some(Slot::Restoring { .. }) => {
                return Err(ApiError::MigrationInProgress { tenant }.into())
            }
            Some(Slot::Moved { peer }) => {
                let peer = *peer;
                return Err(ApiError::Moved { tenant, peer }.into());
            }
            Some(Slot::Evicted { .. }) => {}
        }
        let _restore_span = trace::span("svc.restore", rid.causal(), 0);
        let Some(Slot::Evicted {
            spec,
            spill,
            measured: measured_hint,
            ..
        }) = self.slots.remove(&tenant)
        else {
            unreachable!("checked evicted above");
        };
        let container = match &spill {
            Spill::Disk(path) => std::fs::read(path).map_err(|e| ApiError::EvictIo {
                message: format!("{}: {e}", path.display()),
            })?,
            Spill::Memory(bytes) => bytes.clone(),
        };
        let (stored_spec, blobs): (TenantSpec, Vec<Vec<u8>>) =
            from_bytes(&container).ok_or_else(|| ApiError::EvictIo {
                message: format!("tenant {tenant}: undecodable spill container"),
            })?;
        debug_assert_eq!(stored_spec, spec, "spill container spec drifted");
        let backend = match Backend::restore(&stored_spec, &blobs) {
            Ok(b) => b,
            Err(e) => {
                // Put the slot back so the tenant is not lost to a
                // transient I/O failure.
                self.slots.insert(
                    tenant,
                    Slot::Evicted {
                        spec,
                        spill,
                        bytes: container.len() as u64,
                        measured: measured_hint,
                    },
                );
                return Err(e);
            }
        };
        if let Spill::Disk(path) = &spill {
            let _ = std::fs::remove_file(path);
        }
        let measured = backend.measured_bytes();
        self.total_measured += measured;
        self.peak_measured = self.peak_measured.max(self.total_measured);
        self.slots.insert(
            tenant,
            Slot::Live(Tenant {
                spec: stored_spec,
                backend,
                measured,
                peak_measured: measured,
                migration: None,
            }),
        );
        self.evicted_tenants -= 1;
        self.live_tenants += 1;
        self.spill_bytes -= container.len() as u64;
        self.restores += 1;
        sbc_obs::counter!("serve.restores").incr();
        svc::observe_restore(rid);
        svc::observe_tenant_state(tenant, TenantState::Live, measured as u64);
        Ok(true)
    }

    /// The admission decision for a mutating request touching `exempt`.
    /// Returns the refusal response when the request must not proceed.
    /// Always records how long the decision took.
    fn admit(&mut self, exempt: TenantId, rid: RequestId) -> Option<ApiResponse> {
        self.admit_with(exempt, 0, rid)
    }

    /// The admission decision for a request about to restore `tenant`
    /// from its spill: the evicted footprint is charged as incoming
    /// bytes *before* the restore, so an evicted tenant cannot be
    /// brought back past the budget (the restore-on-demand path would
    /// otherwise bypass admission control entirely). A no-op when the
    /// tenant is live or unknown.
    fn admit_restore(&mut self, tenant: TenantId, rid: RequestId) -> Option<ApiResponse> {
        let incoming = match self.slots.get(&tenant) {
            Some(Slot::Evicted { measured, .. }) => *measured,
            _ => return None,
        };
        self.admit_with(tenant, incoming, rid)
    }

    fn admit_with(
        &mut self,
        exempt: TenantId,
        incoming: usize,
        rid: RequestId,
    ) -> Option<ApiResponse> {
        let _admit_span = trace::span("svc.admit", rid.causal(), incoming as u64);
        let t0 = Instant::now();
        let verdict = self.admit_inner(exempt, incoming);
        self.record_admission_ns(t0.elapsed().as_nanos() as u64);
        if verdict.is_some() {
            self.overloaded += 1;
            sbc_obs::counter!("serve.overloaded").incr();
        }
        verdict
    }

    /// `incoming` is the known footprint the request is about to add
    /// (a restore's evicted bytes; 0 for the admit-then-measure paths).
    /// With `incoming` known the check is exact (`total + incoming`
    /// must fit); without it the service admits while strictly under
    /// budget and measures afterwards.
    fn admit_inner(&mut self, exempt: TenantId, incoming: usize) -> Option<ApiResponse> {
        let budget = self.config.budget_bytes;
        if budget == 0 {
            return None;
        }
        let over = |total: usize| {
            if incoming > 0 {
                total.saturating_add(incoming) > budget
            } else {
                total >= budget
            }
        };
        if !over(self.total_measured) {
            return None;
        }
        if self.config.policy == OverloadPolicy::Shed {
            // Evict fattest-first until back under budget. The target
            // tenant is exempt — evicting it to admit its own request
            // would just force an immediate restore. Frozen (migrating)
            // tenants are also exempt: evicting one would drop its
            // snapshot and replay queue mid-transfer.
            while over(self.total_measured) {
                let victim = self
                    .slots
                    .iter()
                    .filter_map(|(id, slot)| match slot {
                        Slot::Live(t) if *id != exempt && t.migration.is_none() => {
                            Some((*id, t.measured))
                        }
                        _ => None,
                    })
                    .max_by_key(|&(id, measured)| (measured, id));
                match victim {
                    Some((id, _)) => {
                        if self.evict_tenant(id).is_err() {
                            break;
                        }
                        self.shed_evictions += 1;
                    }
                    None => break,
                }
            }
            if !over(self.total_measured) {
                return None;
            }
        }
        Some(ApiResponse::Overloaded {
            measured_bytes: self.total_measured as u64,
            budget_bytes: budget as u64,
        })
    }

    /// Refreshes one live tenant's cached footprint and the running
    /// totals after a mutation.
    fn remeasure(&mut self, tenant: TenantId) {
        if let Some(Slot::Live(t)) = self.slots.get_mut(&tenant) {
            let now = t.backend.measured_bytes();
            t.peak_measured = t.peak_measured.max(now);
            self.total_measured = self.total_measured - t.measured + now;
            t.measured = now;
            self.peak_measured = self.peak_measured.max(self.total_measured);
            svc::observe_tenant_state(tenant, TenantState::Live, now as u64);
        }
    }

    fn err(e: SbcError) -> ApiResponse {
        ApiResponse::Error {
            code: e.code(),
            message: e.to_string(),
        }
    }

    /// Handles one request record: assigns it a [`RequestId`], opens
    /// the `svc.request` span (the root of the request's causal chain
    /// in the flight recorder), dispatches, then publishes SLO
    /// telemetry and the slow-request trigger. All of it is
    /// observational — the response is exactly what the dispatch chose,
    /// bit for bit, in every feature state.
    pub fn handle(&mut self, req: &ApiRequest) -> ApiResponse {
        sbc_obs::counter!("serve.requests").incr();
        self.request_seq += 1;
        let rid = match Self::request_tenant(req) {
            Some(tenant) => RequestId::for_tenant(tenant, self.request_seq),
            None => RequestId::service(self.request_seq),
        };
        let tag = Self::request_tag(req);
        // Class is read before dispatch so a Close still reports under
        // the tenant's class, not the now-empty slot's.
        let class = svc::metrics_active().then(|| self.request_class(rid));
        let timer = svc::RequestTimer::start();
        let span = trace::span("svc.request", rid.causal(), tag as u64);
        let resp = self.dispatch(req, rid);
        let error_code = Self::response_error(&resp);
        trace::instant(
            "svc.response",
            rid.causal(),
            u64::from(error_code.unwrap_or(0)),
        );
        drop(span);
        let elapsed_ns = timer.elapsed_ns();
        if let Some(class) = class {
            svc::observe_request(class, tag, rid, elapsed_ns, error_code);
            self.publish_gauges();
        }
        svc::maybe_dump_slow(rid, elapsed_ns);
        resp
    }

    fn dispatch(&mut self, req: &ApiRequest, rid: RequestId) -> ApiResponse {
        match req {
            ApiRequest::Hello {
                min_version,
                max_version,
            } => match negotiate(*min_version, *max_version) {
                Ok(version) => ApiResponse::HelloAck { version },
                Err(e) => Self::err(e.into()),
            },
            ApiRequest::Open { tenant, spec } => self.open(*tenant, *spec, rid),
            ApiRequest::Insert { tenant, points } => self.mutate(*tenant, points, false, rid),
            ApiRequest::Delete { tenant, points } => self.mutate(*tenant, points, true, rid),
            ApiRequest::Query { tenant } => self.query(*tenant, rid),
            ApiRequest::Stats { tenant } => self.stats(*tenant),
            ApiRequest::Checkpoint { tenant } => self.checkpoint(*tenant, rid),
            ApiRequest::Evict { tenant } => self.evict(*tenant),
            ApiRequest::Close { tenant } => self.close(*tenant),
            ApiRequest::ServerStats => ApiResponse::ServerStatsReply {
                stats: self.server_stats(),
            },
            ApiRequest::Shutdown => {
                self.shutting_down = true;
                ApiResponse::ShuttingDown
            }
            ApiRequest::Health => ApiResponse::HealthReply {
                report: self.health_report(),
            },
            ApiRequest::MigrateOut {
                tenant,
                chunk_bytes,
            } => self.migrate_out(*tenant, *chunk_bytes, rid),
            ApiRequest::ChunkedCheckpoint {
                tenant,
                spec,
                chunk,
                total_chunks,
                total_bytes,
                measured_bytes,
                payload,
            } => self.chunk_in(
                *tenant,
                spec,
                *chunk,
                *total_chunks,
                *total_bytes,
                *measured_bytes,
                payload,
                rid,
            ),
            ApiRequest::DrainReplay { tenant, max_ops } => self.drain_replay(*tenant, *max_ops),
            ApiRequest::CutOver { tenant, peer } => self.cut_over(*tenant, *peer, rid),
            ApiRequest::MigrateAbort { tenant } => self.migrate_abort(*tenant),
            ApiRequest::Unknown { tag } => ApiResponse::Unsupported { tag: *tag },
        }
    }

    /// The tenant a request addresses, if any.
    fn request_tenant(req: &ApiRequest) -> Option<TenantId> {
        match req {
            ApiRequest::Open { tenant, .. }
            | ApiRequest::Insert { tenant, .. }
            | ApiRequest::Delete { tenant, .. }
            | ApiRequest::Query { tenant }
            | ApiRequest::Stats { tenant }
            | ApiRequest::Checkpoint { tenant }
            | ApiRequest::Evict { tenant }
            | ApiRequest::Close { tenant }
            | ApiRequest::MigrateOut { tenant, .. }
            | ApiRequest::ChunkedCheckpoint { tenant, .. }
            | ApiRequest::DrainReplay { tenant, .. }
            | ApiRequest::CutOver { tenant, .. }
            | ApiRequest::MigrateAbort { tenant } => Some(*tenant),
            ApiRequest::Hello { .. }
            | ApiRequest::ServerStats
            | ApiRequest::Shutdown
            | ApiRequest::Health
            | ApiRequest::Unknown { .. } => None,
        }
    }

    /// Histogram key for the request's wire tag.
    fn request_tag(req: &ApiRequest) -> RequestTag {
        match req {
            ApiRequest::Hello { .. } => RequestTag::Hello,
            ApiRequest::Open { .. } => RequestTag::Open,
            ApiRequest::Insert { .. } => RequestTag::Insert,
            ApiRequest::Delete { .. } => RequestTag::Delete,
            ApiRequest::Query { .. } => RequestTag::Query,
            ApiRequest::Stats { .. } => RequestTag::Stats,
            ApiRequest::Checkpoint { .. } => RequestTag::Checkpoint,
            ApiRequest::Evict { .. } => RequestTag::Evict,
            ApiRequest::Close { .. } => RequestTag::Close,
            ApiRequest::ServerStats => RequestTag::ServerStats,
            ApiRequest::Shutdown => RequestTag::Shutdown,
            ApiRequest::Health => RequestTag::Health,
            ApiRequest::MigrateOut { .. } => RequestTag::MigrateOut,
            ApiRequest::ChunkedCheckpoint { .. } => RequestTag::MigrateChunk,
            ApiRequest::DrainReplay { .. } => RequestTag::MigrateDrain,
            ApiRequest::CutOver { .. } => RequestTag::CutOver,
            ApiRequest::MigrateAbort { .. } => RequestTag::MigrateAbort,
            ApiRequest::Unknown { .. } => RequestTag::Unknown,
        }
    }

    /// The wire error code a response carries, if it is a refusal or
    /// failure (the stable 200–246 registry; `Overloaded`,
    /// `Unsupported` and `Moved` map to their coded equivalents
    /// 220/221/246).
    fn response_error(resp: &ApiResponse) -> Option<u16> {
        match resp {
            ApiResponse::Error { code, .. } => Some(*code),
            ApiResponse::Overloaded { .. } => Some(220),
            ApiResponse::Unsupported { .. } => Some(221),
            ApiResponse::Moved { .. } => Some(246),
            _ => None,
        }
    }

    /// Histogram class for the request's tenant: sharded specs pay a
    /// merge on query, so their tails are tracked separately. Unknown
    /// and service-scoped requests count as single.
    fn request_class(&self, rid: RequestId) -> RequestClass {
        let shards = match self.slots.get(&rid.tenant) {
            Some(Slot::Live(t)) => t.spec.shards,
            Some(Slot::Evicted { spec, .. }) | Some(Slot::Restoring { spec, .. }) => spec.shards,
            Some(Slot::Moved { .. }) | None => 1,
        };
        if shards > 1 {
            RequestClass::Sharded
        } else {
            RequestClass::Single
        }
    }

    /// Publishes the service gauges off the O(1) maintained fields.
    fn publish_gauges(&self) {
        svc::set_gauge(svc::Gauge::TenantsLive, self.live_tenants);
        svc::set_gauge(svc::Gauge::TenantsEvicted, self.evicted_tenants);
        svc::set_gauge(svc::Gauge::SpillBytes, self.spill_bytes);
        svc::set_gauge(svc::Gauge::AdmissionRejects, self.overloaded);
        svc::set_gauge(svc::Gauge::AdmissionSheds, self.shed_evictions);
        svc::set_gauge(svc::Gauge::Restores, self.restores);
    }

    /// The redirect for a tombstoned tenant, if this id has moved.
    /// Checked before every tenant-scoped operation so clients are
    /// steered to the owning peer instead of hitting `UnknownTenant`.
    fn check_moved(&self, tenant: TenantId) -> Option<ApiResponse> {
        match self.slots.get(&tenant) {
            Some(Slot::Moved { peer }) => Some(ApiResponse::Moved {
                tenant,
                peer: *peer,
            }),
            _ => None,
        }
    }

    fn open(&mut self, tenant: TenantId, spec: TenantSpec, rid: RequestId) -> ApiResponse {
        if let Some(resp) = self.check_moved(tenant) {
            return resp;
        }
        if let Some(Slot::Restoring { .. }) = self.slots.get(&tenant) {
            return Self::err(ApiError::MigrationInProgress { tenant }.into());
        }
        enum Known {
            LiveSame,
            EvictedSame,
            SpecMismatch,
            Absent,
        }
        let known = match self.slots.get(&tenant) {
            Some(Slot::Live(t)) if t.spec == spec => Known::LiveSame,
            Some(Slot::Evicted { spec: old, .. }) if *old == spec => Known::EvictedSame,
            Some(_) => Known::SpecMismatch,
            None => Known::Absent,
        };
        match known {
            // Idempotent re-open (retried frame).
            Known::LiveSame => {
                return ApiResponse::Opened {
                    tenant,
                    restored: false,
                }
            }
            Known::EvictedSame => {
                if let Some(refusal) = self.admit_restore(tenant, rid) {
                    return refusal;
                }
                return match self.ensure_live(tenant, rid) {
                    Ok(_) => ApiResponse::Opened {
                        tenant,
                        restored: true,
                    },
                    Err(e) => Self::err(e),
                };
            }
            Known::SpecMismatch => return Self::err(ApiError::TenantExists { tenant }.into()),
            Known::Absent => {}
        }
        if self.config.max_tenants > 0 && self.slots.len() >= self.config.max_tenants {
            self.overloaded += 1;
            return ApiResponse::Overloaded {
                measured_bytes: self.total_measured as u64,
                budget_bytes: self.config.budget_bytes as u64,
            };
        }
        if let Some(refusal) = self.admit(tenant, rid) {
            return refusal;
        }
        let backend = match Backend::build(&spec) {
            Ok(b) => b,
            Err(e) => return Self::err(e),
        };
        let measured = backend.measured_bytes();
        self.total_measured += measured;
        self.peak_measured = self.peak_measured.max(self.total_measured);
        self.slots.insert(
            tenant,
            Slot::Live(Tenant {
                spec,
                backend,
                measured,
                peak_measured: measured,
                migration: None,
            }),
        );
        self.live_tenants += 1;
        sbc_obs::counter!("serve.tenants.opened").incr();
        svc::observe_tenant_state(tenant, TenantState::Live, measured as u64);
        ApiResponse::Opened {
            tenant,
            restored: false,
        }
    }

    fn mutate(
        &mut self,
        tenant: TenantId,
        points: &[Point],
        delete: bool,
        rid: RequestId,
    ) -> ApiResponse {
        if let Some(resp) = self.check_moved(tenant) {
            return resp;
        }
        // An evicted target's footprint is admitted *before* the
        // restore pulls it back into memory; the refusal leaves the
        // tenant on disk and the budget intact.
        if let Some(refusal) = self.admit_restore(tenant, rid) {
            return refusal;
        }
        if let Err(e) = self.ensure_live(tenant, rid) {
            return Self::err(e);
        }
        if let Some(refusal) = self.admit(tenant, rid) {
            return refusal;
        }
        let Some(Slot::Live(t)) = self.slots.get_mut(&tenant) else {
            unreachable!("ensure_live succeeded");
        };
        let dims = t.spec.dims as usize;
        if let Some(bad) = points.iter().find(|p| p.coords().len() != dims) {
            return Self::err(
                ApiError::InvalidPoints {
                    message: format!(
                        "tenant {tenant} is {dims}-dimensional, got a {}-dimensional point",
                        bad.coords().len()
                    ),
                }
                .into(),
            );
        }
        // A frozen (migrating) tenant double-buffers: the batch must
        // also fit the replay queue, and the capacity check happens
        // *before* anything is applied, so a refused batch leaves both
        // buffers untouched.
        if let Some(m) = t.migration.as_ref() {
            let incoming = points.len() as u64;
            if m.queued_ops + incoming > REPLAY_QUEUE_MAX_OPS {
                let queued = m.queued_ops;
                return Self::err(
                    ApiError::ReplayOverflow {
                        tenant,
                        queued,
                        cap: REPLAY_QUEUE_MAX_OPS,
                    }
                    .into(),
                );
            }
        }
        let _backend_span = trace::span("svc.backend", rid.causal(), points.len() as u64);
        if delete {
            t.backend.delete_batch(points);
        } else {
            t.backend.insert_batch(points);
        }
        let mut queued_now = 0;
        if let Some(m) = t.migration.as_mut() {
            m.replay.push_back(ReplayOp {
                delete,
                points: points.to_vec(),
            });
            m.queued_ops += points.len() as u64;
            queued_now = m.queued_ops;
        }
        let net_count = t.backend.net_count();
        self.ops_total += points.len() as u64;
        self.migration.replay_queue_peak = self.migration.replay_queue_peak.max(queued_now);
        sbc_obs::counter!("serve.ops").add(points.len() as u64);
        self.remeasure(tenant);
        ApiResponse::Applied {
            tenant,
            applied: points.len() as u64,
            net_count,
        }
    }

    fn query(&mut self, tenant: TenantId, rid: RequestId) -> ApiResponse {
        if let Some(resp) = self.check_moved(tenant) {
            return resp;
        }
        // Reads on a live tenant are never refused, but a read that
        // must *restore* grows the service and goes through the same
        // restore admission as mutations.
        if let Some(refusal) = self.admit_restore(tenant, rid) {
            return refusal;
        }
        if let Err(e) = self.ensure_live(tenant, rid) {
            return Self::err(e);
        }
        let Some(Slot::Live(t)) = self.slots.get(&tenant) else {
            unreachable!("ensure_live succeeded");
        };
        let _backend_span = trace::span("svc.backend", rid.causal(), 0);
        match t.backend.finish_ref() {
            Ok(cs) => ApiResponse::CoresetReply {
                tenant,
                o: cs.o,
                points: cs
                    .entries()
                    .iter()
                    .map(|e| CoresetPoint {
                        point: e.point.clone(),
                        weight: e.weight,
                        level: e.level,
                        part: e.part as u64,
                    })
                    .collect(),
            },
            Err(e) => Self::err(e),
        }
    }

    fn stats(&mut self, tenant: TenantId) -> ApiResponse {
        // Stats must not force a restore — observability stays cheap.
        match self.slots.get(&tenant) {
            Some(Slot::Live(t)) => ApiResponse::StatsReply {
                tenant,
                stats: t.stats(t.spec.shards.max(1)),
            },
            Some(Slot::Evicted { spec, .. }) => ApiResponse::StatsReply {
                tenant,
                stats: TenantStats {
                    shards: spec.shards.max(1),
                    evicted: true,
                    ..TenantStats::default()
                },
            },
            Some(Slot::Restoring { .. }) => {
                Self::err(ApiError::MigrationInProgress { tenant }.into())
            }
            Some(Slot::Moved { peer }) => ApiResponse::Moved {
                tenant,
                peer: *peer,
            },
            None => Self::err(ApiError::UnknownTenant { tenant }.into()),
        }
    }

    fn checkpoint(&mut self, tenant: TenantId, rid: RequestId) -> ApiResponse {
        if let Some(resp) = self.check_moved(tenant) {
            return resp;
        }
        if let Some(refusal) = self.admit_restore(tenant, rid) {
            return refusal;
        }
        if let Err(e) = self.ensure_live(tenant, rid) {
            return Self::err(e);
        }
        let Some(Slot::Live(t)) = self.slots.get(&tenant) else {
            unreachable!("ensure_live succeeded");
        };
        let _backend_span = trace::span("svc.backend", rid.causal(), 0);
        match t.backend.checkpoint_blobs() {
            Ok(blobs) => ApiResponse::CheckpointReply {
                tenant,
                bytes: to_bytes(&(t.spec, blobs)),
            },
            Err(e) => Self::err(e),
        }
    }

    fn evict(&mut self, tenant: TenantId) -> ApiResponse {
        match self.slots.get(&tenant) {
            Some(Slot::Evicted { bytes, .. }) => {
                // Idempotent re-evict (retried frame).
                let bytes = *bytes;
                ApiResponse::Evicted { tenant, bytes }
            }
            // Evicting a frozen tenant would drop its snapshot and
            // replay queue mid-transfer; the coordinator must abort or
            // cut over first.
            Some(Slot::Live(t)) if t.migration.is_some() => {
                Self::err(ApiError::MigrationInProgress { tenant }.into())
            }
            Some(Slot::Live(_)) => match self.evict_tenant(tenant) {
                Ok(bytes) => ApiResponse::Evicted { tenant, bytes },
                Err(e) => Self::err(e),
            },
            Some(Slot::Restoring { .. }) => {
                Self::err(ApiError::MigrationInProgress { tenant }.into())
            }
            Some(Slot::Moved { peer }) => ApiResponse::Moved {
                tenant,
                peer: *peer,
            },
            None => Self::err(ApiError::UnknownTenant { tenant }.into()),
        }
    }

    fn close(&mut self, tenant: TenantId) -> ApiResponse {
        match self.slots.remove(&tenant) {
            Some(Slot::Live(t)) => {
                self.total_measured -= t.measured;
                self.live_tenants -= 1;
                svc::observe_tenant_state(tenant, TenantState::Closed, 0);
                ApiResponse::Closed { tenant }
            }
            Some(Slot::Evicted { spill, bytes, .. }) => {
                self.evicted_tenants -= 1;
                self.spill_bytes -= bytes;
                if let Spill::Disk(path) = spill {
                    let _ = std::fs::remove_file(path);
                }
                svc::observe_tenant_state(tenant, TenantState::Closed, 0);
                ApiResponse::Closed { tenant }
            }
            // Closing a half-assembled transfer releases its admission
            // reservation; closing a tombstone just forgets the
            // redirect.
            Some(Slot::Restoring { measured, .. }) => {
                self.total_measured -= measured;
                svc::observe_tenant_state(tenant, TenantState::Closed, 0);
                ApiResponse::Closed { tenant }
            }
            Some(Slot::Moved { .. }) => {
                svc::observe_tenant_state(tenant, TenantState::Closed, 0);
                ApiResponse::Closed { tenant }
            }
            None => Self::err(ApiError::UnknownTenant { tenant }.into()),
        }
    }

    /// Freezes a tenant for outbound migration: checkpoints it at the
    /// current request seq (the **seq barrier**), splits the container
    /// into `chunk_bytes`-sized chunks, and arms the replay queue.
    /// Until cutover or abort, mutations are double-buffered — applied
    /// locally *and* queued — so the tenant stays fully readable and an
    /// abort loses nothing.
    fn migrate_out(&mut self, tenant: TenantId, chunk_bytes: u32, rid: RequestId) -> ApiResponse {
        if let Some(resp) = self.check_moved(tenant) {
            return resp;
        }
        if chunk_bytes == 0 {
            return Self::err(
                ApiError::InvalidSpec {
                    message: "chunk_bytes must be positive".to_string(),
                }
                .into(),
            );
        }
        if chunk_bytes > MAX_MIGRATION_CHUNK_BYTES {
            return Self::err(
                ApiError::ChunkTooLarge {
                    claimed: u64::from(chunk_bytes),
                    max: u64::from(MAX_MIGRATION_CHUNK_BYTES),
                }
                .into(),
            );
        }
        // Idempotent re-freeze (retried frame): answer the existing
        // manifest without re-checkpointing.
        if let Some(Slot::Live(t)) = self.slots.get(&tenant) {
            if let Some(m) = &t.migration {
                return ApiResponse::MigrateManifest {
                    tenant,
                    spec: t.spec,
                    total_chunks: m.chunks.len() as u32,
                    total_bytes: m.total_bytes,
                    measured_bytes: m.measured_bytes,
                    seq_barrier: m.seq_barrier,
                };
            }
        }
        // An evicted tenant is restored first (charged like any other
        // restore) — the wire ships the same container either way, but
        // freezing a live backend is what arms the replay queue.
        if let Some(refusal) = self.admit_restore(tenant, rid) {
            return refusal;
        }
        if let Err(e) = self.ensure_live(tenant, rid) {
            return Self::err(e);
        }
        let _span = trace::span("svc.migrate.out", rid.causal(), u64::from(chunk_bytes));
        let cap = self.migration_byte_cap();
        let seq_barrier = self.request_seq;
        let Some(Slot::Live(t)) = self.slots.get_mut(&tenant) else {
            unreachable!("ensure_live succeeded");
        };
        let blobs = match t.backend.checkpoint_blobs() {
            Ok(b) => b,
            Err(e) => return Self::err(e),
        };
        let container = to_bytes(&(t.spec, blobs));
        let total_bytes = container.len() as u64;
        if total_bytes > cap {
            return Self::err(
                ApiError::ChunkTooLarge {
                    claimed: total_bytes,
                    max: cap,
                }
                .into(),
            );
        }
        let chunks: Vec<Vec<u8>> = container
            .chunks(chunk_bytes as usize)
            .map(<[u8]>::to_vec)
            .collect();
        let total_chunks = chunks.len() as u32;
        let measured_bytes = t.measured as u64;
        let spec = t.spec;
        t.migration = Some(MigrationOut {
            chunks,
            total_bytes,
            measured_bytes,
            seq_barrier,
            replay: VecDeque::new(),
            queued_ops: 0,
        });
        self.migration.migrations_out += 1;
        svc::observe_migration(MigrationEvent::Out, 1);
        ApiResponse::MigrateManifest {
            tenant,
            spec,
            total_chunks,
            total_bytes,
            measured_bytes,
            seq_barrier,
        }
    }

    /// One chunk of an inbound transfer. Chunk 0 admits the tenant
    /// (charging the manifest's `measured_bytes` as a budget
    /// reservation, exactly like a restore); the final chunk decodes
    /// the assembled container and restores it bit-identically.
    #[allow(clippy::too_many_arguments)]
    fn chunk_in(
        &mut self,
        tenant: TenantId,
        spec: &TenantSpec,
        chunk: u32,
        total_chunks: u32,
        total_bytes: u64,
        measured_bytes: u64,
        payload: &[u8],
        rid: RequestId,
    ) -> ApiResponse {
        let _span = trace::span("svc.migrate.in", rid.causal(), u64::from(chunk));
        // Header sanity before any state is touched — hostile sizes are
        // refused without buffering a byte.
        let cap = self.migration_byte_cap();
        if total_bytes > cap {
            return Self::err(
                ApiError::ChunkTooLarge {
                    claimed: total_bytes,
                    max: cap,
                }
                .into(),
            );
        }
        if payload.len() as u64 > u64::from(MAX_MIGRATION_CHUNK_BYTES) {
            return Self::err(
                ApiError::ChunkTooLarge {
                    claimed: payload.len() as u64,
                    max: u64::from(MAX_MIGRATION_CHUNK_BYTES),
                }
                .into(),
            );
        }
        if total_chunks == 0 || chunk >= total_chunks {
            return Self::err(
                ApiError::ChunkOutOfOrder {
                    tenant,
                    expected: 0,
                    got: chunk,
                }
                .into(),
            );
        }
        // Chunk 0 supersedes a stale tombstone: the fleet is moving the
        // tenant *back* here, so the old redirect is obsolete routing
        // state. Mid-transfer chunks still redirect (below).
        if chunk == 0 {
            if let Some(Slot::Moved { .. }) = self.slots.get(&tenant) {
                self.slots.remove(&tenant);
            }
        }
        match self.slots.get(&tenant) {
            Some(Slot::Moved { peer }) => {
                let peer = *peer;
                return ApiResponse::Moved { tenant, peer };
            }
            Some(Slot::Live(_)) | Some(Slot::Evicted { .. }) => {
                return Self::err(ApiError::TenantExists { tenant }.into())
            }
            Some(Slot::Restoring { .. }) => {}
            None => {
                // First contact must be chunk 0 — a mid-transfer chunk
                // for an unknown tenant is a lost or reordered start.
                if chunk != 0 {
                    return Self::err(
                        ApiError::ChunkOutOfOrder {
                            tenant,
                            expected: 0,
                            got: chunk,
                        }
                        .into(),
                    );
                }
                if let Err(e) = pipeline_params(spec) {
                    return Self::err(e);
                }
                if self.config.max_tenants > 0 && self.slots.len() >= self.config.max_tenants {
                    self.overloaded += 1;
                    return ApiResponse::Overloaded {
                        measured_bytes: self.total_measured as u64,
                        budget_bytes: self.config.budget_bytes as u64,
                    };
                }
                // Admit the manifest's footprint up front and hold it
                // as a reservation for the whole transfer — a migration
                // storm cannot stack inbound tenants past the budget
                // (the restore-budget guarantee, extended to fleets).
                let measured = measured_bytes as usize;
                if let Some(refusal) = self.admit_with(tenant, measured, rid) {
                    return refusal;
                }
                self.total_measured += measured;
                self.peak_measured = self.peak_measured.max(self.total_measured);
                self.slots.insert(
                    tenant,
                    Slot::Restoring {
                        spec: *spec,
                        total_chunks,
                        total_bytes,
                        measured,
                        next_chunk: 0,
                        buf: Vec::new(),
                    },
                );
            }
        }
        let Some(Slot::Restoring {
            spec: sspec,
            total_chunks: tc,
            total_bytes: tb,
            measured,
            next_chunk,
            buf,
        }) = self.slots.get_mut(&tenant)
        else {
            unreachable!("slot inserted or matched Restoring above");
        };
        // Every chunk re-states the manifest; a drifting header means
        // two transfers are interleaving and the chunk is refused.
        if *tc != total_chunks || *tb != total_bytes || *sspec != *spec || {
            let reserved = *measured as u64;
            reserved != measured_bytes
        } {
            let expected = *next_chunk;
            return Self::err(
                ApiError::ChunkOutOfOrder {
                    tenant,
                    expected,
                    got: chunk,
                }
                .into(),
            );
        }
        // Idempotent re-ack of the chunk just applied (retried frame).
        if chunk.wrapping_add(1) == *next_chunk {
            let received_bytes = buf.len() as u64;
            return ApiResponse::ChunkAck {
                tenant,
                chunk,
                received_bytes,
            };
        }
        if chunk != *next_chunk {
            let expected = *next_chunk;
            return Self::err(
                ApiError::ChunkOutOfOrder {
                    tenant,
                    expected,
                    got: chunk,
                }
                .into(),
            );
        }
        let claimed = (buf.len() + payload.len()) as u64;
        if claimed > total_bytes {
            return Self::err(
                ApiError::ChunkTooLarge {
                    claimed,
                    max: total_bytes,
                }
                .into(),
            );
        }
        buf.extend_from_slice(payload);
        *next_chunk += 1;
        let received_bytes = buf.len() as u64;
        let done = *next_chunk == total_chunks;
        self.migration.chunks_in += 1;
        svc::observe_migration(MigrationEvent::Chunk, 1);
        if !done {
            return ApiResponse::ChunkAck {
                tenant,
                chunk,
                received_bytes,
            };
        }
        // Final chunk: swap the reservation for the restored backend's
        // actual footprint. A failed decode drops the transfer entirely
        // (slot and reservation) — the source still owns the tenant.
        let Some(Slot::Restoring {
            spec: sspec,
            measured,
            buf,
            ..
        }) = self.slots.remove(&tenant)
        else {
            unreachable!("matched Restoring above");
        };
        self.total_measured -= measured;
        if received_bytes != total_bytes {
            return Self::err(
                ApiError::EvictIo {
                    message: format!(
                        "tenant {tenant}: migration container ended at \
                         {received_bytes} of {total_bytes} bytes"
                    ),
                }
                .into(),
            );
        }
        let Some((stored_spec, blobs)) = from_bytes::<(TenantSpec, Vec<Vec<u8>>)>(&buf) else {
            return Self::err(
                ApiError::EvictIo {
                    message: format!("tenant {tenant}: undecodable migration container"),
                }
                .into(),
            );
        };
        if stored_spec != sspec {
            return Self::err(
                ApiError::EvictIo {
                    message: format!("tenant {tenant}: migration container spec mismatch"),
                }
                .into(),
            );
        }
        let backend = match Backend::restore(&stored_spec, &blobs) {
            Ok(b) => b,
            Err(e) => return Self::err(e),
        };
        let measured_now = backend.measured_bytes();
        self.total_measured += measured_now;
        self.peak_measured = self.peak_measured.max(self.total_measured);
        self.slots.insert(
            tenant,
            Slot::Live(Tenant {
                spec: stored_spec,
                backend,
                measured: measured_now,
                peak_measured: measured_now,
                migration: None,
            }),
        );
        self.live_tenants += 1;
        self.migration.migrations_in += 1;
        svc::observe_migration(MigrationEvent::In, 1);
        svc::observe_tenant_state(tenant, TenantState::Live, measured_now as u64);
        ApiResponse::ChunkAck {
            tenant,
            chunk,
            received_bytes,
        }
    }

    /// Drains buffered replay batches from a frozen source — whole
    /// batches, at least one when the queue is non-empty, up to
    /// `max_ops` points total.
    fn drain_replay(&mut self, tenant: TenantId, max_ops: u32) -> ApiResponse {
        let (ops, drained, remaining) = match self.slots.get_mut(&tenant) {
            Some(Slot::Live(t)) => match t.migration.as_mut() {
                Some(m) => {
                    let mut ops = Vec::new();
                    let mut drained = 0u64;
                    while let Some(front) = m.replay.front() {
                        let n = front.points.len() as u64;
                        if !ops.is_empty() && drained + n > u64::from(max_ops) {
                            break;
                        }
                        drained += n;
                        let Some(batch) = m.replay.pop_front() else {
                            unreachable!("front() was Some");
                        };
                        ops.push(batch);
                    }
                    m.queued_ops -= drained;
                    (ops, drained, m.queued_ops)
                }
                None => return Self::err(ApiError::NotMigrating { tenant }.into()),
            },
            Some(Slot::Restoring { .. }) => {
                return Self::err(ApiError::MigrationInProgress { tenant }.into())
            }
            Some(Slot::Moved { peer }) => {
                let peer = *peer;
                return ApiResponse::Moved { tenant, peer };
            }
            Some(Slot::Evicted { .. }) => {
                return Self::err(ApiError::NotMigrating { tenant }.into())
            }
            None => return Self::err(ApiError::UnknownTenant { tenant }.into()),
        };
        self.migration.replayed_ops += drained;
        svc::observe_migration(MigrationEvent::Replayed, drained);
        ApiResponse::ReplayBatch {
            tenant,
            ops,
            remaining,
        }
    }

    /// Atomically flips ownership to `peer`: refused while replay ops
    /// remain (the lossless barrier), then the live slot becomes a
    /// redirect tombstone.
    fn cut_over(&mut self, tenant: TenantId, peer: u32, rid: RequestId) -> ApiResponse {
        match self.slots.get(&tenant) {
            // Idempotent re-cutover (retried frame).
            Some(Slot::Moved { peer: p }) => {
                let peer = *p;
                return ApiResponse::MigrateAck {
                    tenant,
                    committed: true,
                    peer,
                };
            }
            Some(Slot::Restoring { .. }) => {
                return Self::err(ApiError::MigrationInProgress { tenant }.into())
            }
            Some(Slot::Evicted { .. }) => {
                return Self::err(ApiError::NotMigrating { tenant }.into())
            }
            Some(Slot::Live(t)) => match &t.migration {
                None => return Self::err(ApiError::NotMigrating { tenant }.into()),
                Some(m) if m.queued_ops > 0 => {
                    let queued = m.queued_ops;
                    return Self::err(ApiError::ReplayPending { tenant, queued }.into());
                }
                Some(_) => {}
            },
            None => return Self::err(ApiError::UnknownTenant { tenant }.into()),
        }
        let Some(Slot::Live(t)) = self.slots.remove(&tenant) else {
            unreachable!("checked live above");
        };
        trace::instant("svc.cutover", rid.causal(), u64::from(peer));
        self.total_measured -= t.measured;
        self.live_tenants -= 1;
        self.slots.insert(tenant, Slot::Moved { peer });
        self.migration.cutovers += 1;
        svc::observe_migration(MigrationEvent::CutOver, 1);
        svc::observe_tenant_state(tenant, TenantState::Closed, 0);
        ApiResponse::MigrateAck {
            tenant,
            committed: true,
            peer,
        }
    }

    /// Abandons an in-progress migration. On the source this is
    /// lossless — ops were double-applied all along, so dropping the
    /// frozen snapshot and queue keeps the tenant current. On a
    /// receiver it discards the half-assembled transfer and releases
    /// its reservation.
    fn migrate_abort(&mut self, tenant: TenantId) -> ApiResponse {
        enum Kind {
            Out,
            In,
            NotMigrating,
            Moved(u32),
            Absent,
        }
        let kind = match self.slots.get(&tenant) {
            Some(Slot::Live(t)) if t.migration.is_some() => Kind::Out,
            Some(Slot::Live(_)) | Some(Slot::Evicted { .. }) => Kind::NotMigrating,
            Some(Slot::Restoring { .. }) => Kind::In,
            Some(Slot::Moved { peer }) => Kind::Moved(*peer),
            None => Kind::Absent,
        };
        match kind {
            Kind::Out => {
                if let Some(Slot::Live(t)) = self.slots.get_mut(&tenant) {
                    t.migration = None;
                }
            }
            Kind::In => {
                if let Some(Slot::Restoring { measured, .. }) = self.slots.remove(&tenant) {
                    self.total_measured -= measured;
                }
            }
            Kind::Moved(peer) => return ApiResponse::Moved { tenant, peer },
            Kind::NotMigrating => return Self::err(ApiError::NotMigrating { tenant }.into()),
            Kind::Absent => return Self::err(ApiError::UnknownTenant { tenant }.into()),
        }
        self.migration.aborts += 1;
        svc::observe_migration(MigrationEvent::Aborted, 1);
        ApiResponse::MigrateAck {
            tenant,
            committed: false,
            peer: 0,
        }
    }

    /// Reads chunk `index` of a frozen tenant's outbound snapshot. The
    /// source-side coordinator ships these to the receiver as
    /// [`ApiRequest::ChunkedCheckpoint`] records; the read is indexed
    /// (not popping) so a lost delivery can be re-read and re-sent.
    pub fn outbound_chunk(&self, tenant: TenantId, index: u32) -> Option<Vec<u8>> {
        let Some(Slot::Live(t)) = self.slots.get(&tenant) else {
            return None;
        };
        t.migration.as_ref()?.chunks.get(index as usize).cloned()
    }

    /// Maps one request frame to one response frame, record-for-record.
    /// Frame-level decode failures produce a single coded error record.
    pub fn handle_frame(&mut self, frame: &[u8]) -> Vec<u8> {
        match unframe_requests(frame) {
            Ok(reqs) => {
                let resps: Vec<ApiResponse> = reqs.iter().map(|r| self.handle(r)).collect();
                frame_responses(&resps)
            }
            Err(e) => {
                self.frame_errors += 1;
                sbc_obs::counter!("serve.frame_errors").incr();
                frame_responses(&[ApiResponse::Error {
                    code: e.code(),
                    message: e.to_string(),
                }])
            }
        }
    }

    /// Envelope entry point for lossy transports: a `(machine, seq)`
    /// wrapper around a frame, answered with a same-`seq` envelope. A
    /// re-delivery of the machine's last sequence number is answered
    /// from cache **without re-applying the frame** — duplicate and
    /// retried deliveries are idempotent.
    pub fn handle_envelope(&mut self, envelope_bytes: &[u8]) -> Vec<u8> {
        let Some(env) = from_bytes::<Envelope>(envelope_bytes) else {
            self.frame_errors += 1;
            sbc_obs::counter!("serve.frame_errors").incr();
            let frame = frame_responses(&[ApiResponse::Error {
                code: ApiError::Truncated.code(),
                message: "undecodable envelope".to_string(),
            }]);
            return to_bytes(&Envelope {
                machine: 0,
                seq: 0,
                payload: frame,
            });
        };
        if let Some((last_seq, cached)) = self.dedup.get(&env.machine) {
            if *last_seq == env.seq {
                sbc_obs::counter!("serve.dedup_hits").incr();
                return cached.clone();
            }
        }
        let frame = self.handle_frame(&env.payload);
        let reply = to_bytes(&Envelope {
            machine: 0,
            seq: env.seq,
            payload: frame,
        });
        if !self.dedup.contains_key(&env.machine) {
            if self.dedup_order.len() >= DEDUP_MAX_MACHINES {
                // Displace the longest-known machine — a client-chosen
                // id cycling through fresh values evicts idle windows
                // instead of growing the map.
                if let Some(oldest) = self.dedup_order.pop_front() {
                    self.dedup.remove(&oldest);
                }
            }
            self.dedup_order.push_back(env.machine);
        }
        self.dedup.insert(env.machine, (env.seq, reply.clone()));
        reply
    }
}
