//! The tenant-multiplexing service core: slot table, admission control,
//! eviction/restore, and the frame/envelope entry points.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sbc::api::{
    frame_responses, negotiate, unframe_requests, ApiError, ApiRequest, ApiResponse, CoresetPoint,
    HealthReport, ServerStatsReport, TenantId, TenantSpec, TenantStats,
};
use sbc::distributed::wire::Envelope;
use sbc::streaming::codec::{from_bytes, to_bytes};
use sbc::{
    Coreset, CoresetParams, Point, SbcError, ShardedIngest, Snapshot, StreamCoresetBuilder,
    StreamOp, StreamParams,
};
use sbc_obs::svc::{self, RequestClass, RequestId, RequestTag, TenantState};
use sbc_obs::trace;

/// What to do with a mutating request that would run past the memory
/// budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Refuse with [`ApiResponse::Overloaded`] and apply nothing.
    Reject,
    /// First shed load — evict the fattest *other* tenants to the spill
    /// store until back under budget — and refuse only if shedding
    /// cannot get there.
    #[default]
    Shed,
}

/// Service configuration.
#[derive(Clone, Debug, Default)]
pub struct ServeConfig {
    /// Memory budget over the sum of live tenants' `measured_bytes`
    /// (0 = unlimited). The admission-control threshold.
    pub budget_bytes: usize,
    /// Cap on concurrently *known* tenants, live or evicted
    /// (0 = unlimited).
    pub max_tenants: usize,
    /// Where evicted tenants spill. `None` keeps eviction blobs in
    /// memory — useful for tests, useless for actually freeing the
    /// budget's underlying RAM, so real deployments set a directory.
    pub spill_dir: Option<PathBuf>,
    /// Overload behavior. Defaults to [`OverloadPolicy::Shed`].
    pub policy: OverloadPolicy,
}

/// One tenant's pipeline: a single builder, or a sharded ingest when the
/// spec asked for horizontal composition.
enum Backend {
    // Boxed: a builder is ~600 bytes of inline ladder state, and the
    // slot table holds thousands of these enums.
    Single(Box<StreamCoresetBuilder>),
    Sharded(ShardedIngest),
}

/// Derives the validated parameter pair from a wire spec, so a bad spec
/// fails with a coded parameter error instead of a panic downstream. The
/// derivation itself is [`sbc::api::tenant_pipeline`] — part of the
/// protocol contract, shared with reference pipelines on the bench side.
fn pipeline_params(spec: &TenantSpec) -> Result<(CoresetParams, StreamParams), SbcError> {
    sbc::api::tenant_pipeline(spec)
}

impl Backend {
    /// Builds a fresh pipeline. The construction mirrors what a
    /// standalone caller writes (`StdRng::seed_from_u64(seed)` /
    /// `ShardedIngest::new(…, seed)`), which is what makes a tenant's
    /// coreset bit-identical to an equivalent single-tenant run.
    fn build(spec: &TenantSpec) -> Result<Backend, SbcError> {
        let (params, sparams) = pipeline_params(spec)?;
        Ok(if spec.shards <= 1 {
            let mut rng = StdRng::seed_from_u64(spec.seed);
            Backend::Single(Box::new(StreamCoresetBuilder::new(
                params, sparams, &mut rng,
            )))
        } else {
            Backend::Sharded(ShardedIngest::new(params, sparams, spec.seed)?)
        })
    }

    fn insert_batch(&mut self, points: &[Point]) {
        match self {
            Backend::Single(b) => b.insert_batch(points),
            Backend::Sharded(s) => s.insert_batch(points),
        }
    }

    fn delete_batch(&mut self, points: &[Point]) {
        let ops: Vec<StreamOp> = points.iter().map(|p| StreamOp::Delete(p.clone())).collect();
        match self {
            Backend::Single(b) => b.process_all(&ops),
            Backend::Sharded(s) => s.process_all(&ops),
        }
    }

    fn net_count(&self) -> i64 {
        match self {
            Backend::Single(b) => b.net_count(),
            Backend::Sharded(s) => s.net_count(),
        }
    }

    fn ops_seen(&self) -> u64 {
        match self {
            Backend::Single(b) => b.ops_seen(),
            Backend::Sharded(s) => s.ops_seen(),
        }
    }

    fn measured_bytes(&self) -> usize {
        match self {
            Backend::Single(b) => b.space_report().measured_bytes,
            Backend::Sharded(s) => s.space_report().total.measured_bytes,
        }
    }

    fn finish_ref(&self) -> Result<Coreset, SbcError> {
        match self {
            Backend::Single(b) => Ok(b.finish_ref()?),
            Backend::Sharded(s) => s.finish_ref(),
        }
    }

    /// One checkpoint blob per shard (a single builder is one shard).
    fn checkpoint_blobs(&self) -> Result<Vec<Vec<u8>>, SbcError> {
        match self {
            Backend::Single(b) => Ok(vec![b.checkpoint()?.to_bytes()]),
            Backend::Sharded(s) => (0..s.shards())
                .map(|i| Ok(s.checkpoint_shard(i)?.to_bytes()))
                .collect(),
        }
    }

    /// Inverse of [`Backend::checkpoint_blobs`]: bit-identical restore.
    fn restore(spec: &TenantSpec, blobs: &[Vec<u8>]) -> Result<Backend, SbcError> {
        if spec.shards <= 1 {
            let [blob] = blobs else {
                return Err(ApiError::EvictIo {
                    message: format!("expected 1 shard blob, found {}", blobs.len()),
                }
                .into());
            };
            Ok(Backend::Single(Box::new(StreamCoresetBuilder::restore(
                &Snapshot::from_bytes(blob)?,
            )?)))
        } else {
            if blobs.len() != spec.shards as usize {
                return Err(ApiError::EvictIo {
                    message: format!(
                        "expected {} shard blobs, found {}",
                        spec.shards,
                        blobs.len()
                    ),
                }
                .into());
            }
            let mut ingest = match Backend::build(spec)? {
                Backend::Sharded(s) => s,
                Backend::Single(_) => unreachable!("shards > 1 builds a sharded backend"),
            };
            for (i, blob) in blobs.iter().enumerate() {
                ingest.restore_shard(i, &Snapshot::from_bytes(blob)?)?;
            }
            Ok(Backend::Sharded(ingest))
        }
    }
}

/// Where an evicted tenant's checkpoint container lives.
enum Spill {
    Disk(PathBuf),
    Memory(Vec<u8>),
}

struct Tenant {
    spec: TenantSpec,
    backend: Backend,
    /// Cached `measured_bytes`, refreshed after every mutation — the
    /// service's running total is the sum of these caches, so admission
    /// control is O(1) per request instead of O(tenants) space walks.
    measured: usize,
    peak_measured: usize,
}

impl Tenant {
    fn stats(&self, shards: u32) -> TenantStats {
        TenantStats {
            net_count: self.backend.net_count(),
            ops_seen: self.backend.ops_seen(),
            measured_bytes: self.measured as u64,
            peak_measured_bytes: self.peak_measured as u64,
            shards,
            evicted: false,
        }
    }
}

enum Slot {
    Live(Tenant),
    Evicted {
        spec: TenantSpec,
        spill: Spill,
        bytes: u64,
        /// The tenant's `measured_bytes` at eviction time. Restores are
        /// bit-identical, so this is exactly the footprint a restore
        /// brings back — the headroom the admission decision charges
        /// *before* restoring.
        measured: usize,
    },
}

/// The multi-tenant service core.
///
/// Deliberately transport-free: [`CoresetService::handle_frame`] maps
/// request bytes to response bytes, and the binaries/tests/bench wrap
/// it in whatever I/O they need (stdin/stdout, in-process, the lossy
/// fault-replaying transport).
pub struct CoresetService {
    config: ServeConfig,
    slots: HashMap<TenantId, Slot>,
    /// Sum of live tenants' cached `measured` (admission numerator).
    total_measured: usize,
    peak_measured: usize,
    ops_total: u64,
    overloaded: u64,
    evictions: u64,
    restores: u64,
    /// Evictions forced by the shed admission policy (a subset of
    /// `evictions`).
    shed_evictions: u64,
    /// Live slots, maintained at every lifecycle transition so
    /// [`CoresetService::server_stats`] and the per-request gauge
    /// publish are O(1) instead of O(tenants) slot walks.
    live_tenants: u64,
    /// Evicted slots (same maintenance).
    evicted_tenants: u64,
    /// Bytes currently parked in spill containers by evicted tenants.
    spill_bytes: u64,
    /// Frames/envelopes that failed to decode (bad magic, truncated,
    /// malformed record).
    frame_errors: u64,
    /// Records handled — the [`RequestId::seq`] source and the health
    /// report's `requests_total`.
    request_seq: u64,
    /// Service start time (the health report's uptime).
    started: Instant,
    shutting_down: bool,
    /// Nanoseconds the admission decision took, per admitted-or-refused
    /// request — drained by [`CoresetService::take_admission_ns`]
    /// (serve_bench's p99 source). A bounded ring: once
    /// [`ADMISSION_NS_CAP`] samples accumulate undrained, the oldest
    /// are overwritten, so a production loop that never drains cannot
    /// grow the service without bound.
    admission_ns: Vec<u64>,
    /// Overwrite cursor into `admission_ns` once the ring is full.
    admission_ns_at: usize,
    /// Per-client `(last_seq, cached response envelope)` — the
    /// idempotency window that makes duplicated/retried envelope
    /// deliveries safe. One entry deep per machine, matching the
    /// transport's immediate-retry behavior, and bounded to
    /// [`DEDUP_MAX_MACHINES`] machines (first-seen FIFO eviction via
    /// `dedup_order`): a peer cycling machine ids can displace idle
    /// windows but never grow the map without bound. A displaced
    /// machine merely loses its dedup window — the same contract as a
    /// brand-new peer.
    dedup: HashMap<u32, (u64, Vec<u8>)>,
    /// First-seen order of `dedup` keys, for FIFO displacement.
    dedup_order: VecDeque<u32>,
}

/// Capacity of the admission-latency ring ([`CoresetService::take_admission_ns`]).
const ADMISSION_NS_CAP: usize = 64 * 1024;

/// Most distinct envelope machines the dedup window tracks at once.
const DEDUP_MAX_MACHINES: usize = 1024;

impl CoresetService {
    /// Creates an empty service.
    pub fn new(config: ServeConfig) -> CoresetService {
        CoresetService {
            config,
            slots: HashMap::new(),
            total_measured: 0,
            peak_measured: 0,
            ops_total: 0,
            overloaded: 0,
            evictions: 0,
            restores: 0,
            shed_evictions: 0,
            live_tenants: 0,
            evicted_tenants: 0,
            spill_bytes: 0,
            frame_errors: 0,
            request_seq: 0,
            started: Instant::now(),
            shutting_down: false,
            admission_ns: Vec::new(),
            admission_ns_at: 0,
            dedup: HashMap::new(),
            dedup_order: VecDeque::new(),
        }
    }

    /// True once an [`ApiRequest::Shutdown`] has been handled; server
    /// loops exit after finishing the current frame.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Whole-service accounting (also served as
    /// [`ApiResponse::ServerStatsReply`]).
    pub fn server_stats(&self) -> ServerStatsReport {
        #[cfg(debug_assertions)]
        {
            let (mut live, mut evicted) = (0u64, 0u64);
            for slot in self.slots.values() {
                match slot {
                    Slot::Live(_) => live += 1,
                    Slot::Evicted { .. } => evicted += 1,
                }
            }
            debug_assert_eq!(
                (live, evicted),
                (self.live_tenants, self.evicted_tenants),
                "maintained tenant counts drifted from the slot table"
            );
        }
        ServerStatsReport {
            tenants_live: self.live_tenants,
            tenants_evicted: self.evicted_tenants,
            measured_bytes: self.total_measured as u64,
            peak_measured_bytes: self.peak_measured as u64,
            budget_bytes: self.config.budget_bytes as u64,
            ops_total: self.ops_total,
            overloaded: self.overloaded,
            evictions: self.evictions,
            restores: self.restores,
        }
    }

    /// Machine-readable liveness snapshot (also served as
    /// [`ApiResponse::HealthReply`]). Purely observational — nothing in
    /// it feeds back into service decisions.
    pub fn health_report(&self) -> HealthReport {
        let budget = self.config.budget_bytes as u64;
        HealthReport {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests_total: self.request_seq,
            frame_errors: self.frame_errors,
            tenants_live: self.live_tenants,
            tenants_evicted: self.evicted_tenants,
            measured_bytes: self.total_measured as u64,
            budget_bytes: budget,
            budget_headroom_bytes: if budget == 0 {
                u64::MAX
            } else {
                budget.saturating_sub(self.total_measured as u64)
            },
            spill_bytes: self.spill_bytes,
            overloaded: self.overloaded,
            shutting_down: self.shutting_down,
        }
    }

    /// Drains the recorded per-request admission-decision latencies
    /// (the most recent [`ADMISSION_NS_CAP`] decisions — older samples
    /// are overwritten, not accumulated).
    pub fn take_admission_ns(&mut self) -> Vec<u64> {
        self.admission_ns_at = 0;
        std::mem::take(&mut self.admission_ns)
    }

    fn record_admission_ns(&mut self, ns: u64) {
        if self.admission_ns.len() < ADMISSION_NS_CAP {
            self.admission_ns.push(ns);
        } else {
            self.admission_ns[self.admission_ns_at] = ns;
            self.admission_ns_at = (self.admission_ns_at + 1) % ADMISSION_NS_CAP;
        }
    }

    fn spill_path(&self, tenant: TenantId) -> Option<PathBuf> {
        self.config
            .spill_dir
            .as_ref()
            .map(|d| d.join(format!("tenant-{tenant}.sbct")))
    }

    /// Serializes and spills a live tenant, freeing its memory
    /// accounting. Returns the blob size.
    fn evict_tenant(&mut self, tenant: TenantId) -> Result<u64, SbcError> {
        let Some(Slot::Live(t)) = self.slots.get(&tenant) else {
            return Err(ApiError::UnknownTenant { tenant }.into());
        };
        let container = to_bytes(&(t.spec, t.backend.checkpoint_blobs()?));
        let bytes = container.len() as u64;
        let spill = match self.spill_path(tenant) {
            Some(path) => {
                std::fs::write(&path, &container).map_err(|e| ApiError::EvictIo {
                    message: format!("{}: {e}", path.display()),
                })?;
                Spill::Disk(path)
            }
            None => Spill::Memory(container),
        };
        let Some(Slot::Live(t)) = self.slots.remove(&tenant) else {
            unreachable!("checked live above");
        };
        self.total_measured -= t.measured;
        self.slots.insert(
            tenant,
            Slot::Evicted {
                spec: t.spec,
                spill,
                bytes,
                measured: t.measured,
            },
        );
        self.live_tenants -= 1;
        self.evicted_tenants += 1;
        self.spill_bytes += bytes;
        self.evictions += 1;
        sbc_obs::counter!("serve.evictions").incr();
        svc::observe_tenant_state(tenant, TenantState::Evicted, bytes);
        Ok(bytes)
    }

    /// Makes a tenant live, restoring it from its spill if needed.
    /// `Ok(restored)` tells whether a restore happened.
    fn ensure_live(&mut self, tenant: TenantId, rid: RequestId) -> Result<bool, SbcError> {
        match self.slots.get(&tenant) {
            Some(Slot::Live(_)) => return Ok(false),
            None => return Err(ApiError::UnknownTenant { tenant }.into()),
            Some(Slot::Evicted { .. }) => {}
        }
        let _restore_span = trace::span("svc.restore", rid.causal(), 0);
        let Some(Slot::Evicted {
            spec,
            spill,
            measured: measured_hint,
            ..
        }) = self.slots.remove(&tenant)
        else {
            unreachable!("checked evicted above");
        };
        let container = match &spill {
            Spill::Disk(path) => std::fs::read(path).map_err(|e| ApiError::EvictIo {
                message: format!("{}: {e}", path.display()),
            })?,
            Spill::Memory(bytes) => bytes.clone(),
        };
        let (stored_spec, blobs): (TenantSpec, Vec<Vec<u8>>) =
            from_bytes(&container).ok_or_else(|| ApiError::EvictIo {
                message: format!("tenant {tenant}: undecodable spill container"),
            })?;
        debug_assert_eq!(stored_spec, spec, "spill container spec drifted");
        let backend = match Backend::restore(&stored_spec, &blobs) {
            Ok(b) => b,
            Err(e) => {
                // Put the slot back so the tenant is not lost to a
                // transient I/O failure.
                self.slots.insert(
                    tenant,
                    Slot::Evicted {
                        spec,
                        spill,
                        bytes: container.len() as u64,
                        measured: measured_hint,
                    },
                );
                return Err(e);
            }
        };
        if let Spill::Disk(path) = &spill {
            let _ = std::fs::remove_file(path);
        }
        let measured = backend.measured_bytes();
        self.total_measured += measured;
        self.peak_measured = self.peak_measured.max(self.total_measured);
        self.slots.insert(
            tenant,
            Slot::Live(Tenant {
                spec: stored_spec,
                backend,
                measured,
                peak_measured: measured,
            }),
        );
        self.evicted_tenants -= 1;
        self.live_tenants += 1;
        self.spill_bytes -= container.len() as u64;
        self.restores += 1;
        sbc_obs::counter!("serve.restores").incr();
        svc::observe_restore(rid);
        svc::observe_tenant_state(tenant, TenantState::Live, measured as u64);
        Ok(true)
    }

    /// The admission decision for a mutating request touching `exempt`.
    /// Returns the refusal response when the request must not proceed.
    /// Always records how long the decision took.
    fn admit(&mut self, exempt: TenantId, rid: RequestId) -> Option<ApiResponse> {
        self.admit_with(exempt, 0, rid)
    }

    /// The admission decision for a request about to restore `tenant`
    /// from its spill: the evicted footprint is charged as incoming
    /// bytes *before* the restore, so an evicted tenant cannot be
    /// brought back past the budget (the restore-on-demand path would
    /// otherwise bypass admission control entirely). A no-op when the
    /// tenant is live or unknown.
    fn admit_restore(&mut self, tenant: TenantId, rid: RequestId) -> Option<ApiResponse> {
        let incoming = match self.slots.get(&tenant) {
            Some(Slot::Evicted { measured, .. }) => *measured,
            _ => return None,
        };
        self.admit_with(tenant, incoming, rid)
    }

    fn admit_with(
        &mut self,
        exempt: TenantId,
        incoming: usize,
        rid: RequestId,
    ) -> Option<ApiResponse> {
        let _admit_span = trace::span("svc.admit", rid.causal(), incoming as u64);
        let t0 = Instant::now();
        let verdict = self.admit_inner(exempt, incoming);
        self.record_admission_ns(t0.elapsed().as_nanos() as u64);
        if verdict.is_some() {
            self.overloaded += 1;
            sbc_obs::counter!("serve.overloaded").incr();
        }
        verdict
    }

    /// `incoming` is the known footprint the request is about to add
    /// (a restore's evicted bytes; 0 for the admit-then-measure paths).
    /// With `incoming` known the check is exact (`total + incoming`
    /// must fit); without it the service admits while strictly under
    /// budget and measures afterwards.
    fn admit_inner(&mut self, exempt: TenantId, incoming: usize) -> Option<ApiResponse> {
        let budget = self.config.budget_bytes;
        if budget == 0 {
            return None;
        }
        let over = |total: usize| {
            if incoming > 0 {
                total.saturating_add(incoming) > budget
            } else {
                total >= budget
            }
        };
        if !over(self.total_measured) {
            return None;
        }
        if self.config.policy == OverloadPolicy::Shed {
            // Evict fattest-first until back under budget. The target
            // tenant is exempt — evicting it to admit its own request
            // would just force an immediate restore.
            while over(self.total_measured) {
                let victim = self
                    .slots
                    .iter()
                    .filter_map(|(id, slot)| match slot {
                        Slot::Live(t) if *id != exempt => Some((*id, t.measured)),
                        _ => None,
                    })
                    .max_by_key(|&(id, measured)| (measured, id));
                match victim {
                    Some((id, _)) => {
                        if self.evict_tenant(id).is_err() {
                            break;
                        }
                        self.shed_evictions += 1;
                    }
                    None => break,
                }
            }
            if !over(self.total_measured) {
                return None;
            }
        }
        Some(ApiResponse::Overloaded {
            measured_bytes: self.total_measured as u64,
            budget_bytes: budget as u64,
        })
    }

    /// Refreshes one live tenant's cached footprint and the running
    /// totals after a mutation.
    fn remeasure(&mut self, tenant: TenantId) {
        if let Some(Slot::Live(t)) = self.slots.get_mut(&tenant) {
            let now = t.backend.measured_bytes();
            t.peak_measured = t.peak_measured.max(now);
            self.total_measured = self.total_measured - t.measured + now;
            t.measured = now;
            self.peak_measured = self.peak_measured.max(self.total_measured);
            svc::observe_tenant_state(tenant, TenantState::Live, now as u64);
        }
    }

    fn err(e: SbcError) -> ApiResponse {
        ApiResponse::Error {
            code: e.code(),
            message: e.to_string(),
        }
    }

    /// Handles one request record: assigns it a [`RequestId`], opens
    /// the `svc.request` span (the root of the request's causal chain
    /// in the flight recorder), dispatches, then publishes SLO
    /// telemetry and the slow-request trigger. All of it is
    /// observational — the response is exactly what the dispatch chose,
    /// bit for bit, in every feature state.
    pub fn handle(&mut self, req: &ApiRequest) -> ApiResponse {
        sbc_obs::counter!("serve.requests").incr();
        self.request_seq += 1;
        let rid = match Self::request_tenant(req) {
            Some(tenant) => RequestId::for_tenant(tenant, self.request_seq),
            None => RequestId::service(self.request_seq),
        };
        let tag = Self::request_tag(req);
        // Class is read before dispatch so a Close still reports under
        // the tenant's class, not the now-empty slot's.
        let class = svc::metrics_active().then(|| self.request_class(rid));
        let timer = svc::RequestTimer::start();
        let span = trace::span("svc.request", rid.causal(), tag as u64);
        let resp = self.dispatch(req, rid);
        let error_code = Self::response_error(&resp);
        trace::instant(
            "svc.response",
            rid.causal(),
            u64::from(error_code.unwrap_or(0)),
        );
        drop(span);
        let elapsed_ns = timer.elapsed_ns();
        if let Some(class) = class {
            svc::observe_request(class, tag, rid, elapsed_ns, error_code);
            self.publish_gauges();
        }
        svc::maybe_dump_slow(rid, elapsed_ns);
        resp
    }

    fn dispatch(&mut self, req: &ApiRequest, rid: RequestId) -> ApiResponse {
        match req {
            ApiRequest::Hello {
                min_version,
                max_version,
            } => match negotiate(*min_version, *max_version) {
                Ok(version) => ApiResponse::HelloAck { version },
                Err(e) => Self::err(e.into()),
            },
            ApiRequest::Open { tenant, spec } => self.open(*tenant, *spec, rid),
            ApiRequest::Insert { tenant, points } => self.mutate(*tenant, points, false, rid),
            ApiRequest::Delete { tenant, points } => self.mutate(*tenant, points, true, rid),
            ApiRequest::Query { tenant } => self.query(*tenant, rid),
            ApiRequest::Stats { tenant } => self.stats(*tenant),
            ApiRequest::Checkpoint { tenant } => self.checkpoint(*tenant, rid),
            ApiRequest::Evict { tenant } => self.evict(*tenant),
            ApiRequest::Close { tenant } => self.close(*tenant),
            ApiRequest::ServerStats => ApiResponse::ServerStatsReply {
                stats: self.server_stats(),
            },
            ApiRequest::Shutdown => {
                self.shutting_down = true;
                ApiResponse::ShuttingDown
            }
            ApiRequest::Health => ApiResponse::HealthReply {
                report: self.health_report(),
            },
            ApiRequest::Unknown { tag } => ApiResponse::Unsupported { tag: *tag },
        }
    }

    /// The tenant a request addresses, if any.
    fn request_tenant(req: &ApiRequest) -> Option<TenantId> {
        match req {
            ApiRequest::Open { tenant, .. }
            | ApiRequest::Insert { tenant, .. }
            | ApiRequest::Delete { tenant, .. }
            | ApiRequest::Query { tenant }
            | ApiRequest::Stats { tenant }
            | ApiRequest::Checkpoint { tenant }
            | ApiRequest::Evict { tenant }
            | ApiRequest::Close { tenant } => Some(*tenant),
            ApiRequest::Hello { .. }
            | ApiRequest::ServerStats
            | ApiRequest::Shutdown
            | ApiRequest::Health
            | ApiRequest::Unknown { .. } => None,
        }
    }

    /// Histogram key for the request's wire tag.
    fn request_tag(req: &ApiRequest) -> RequestTag {
        match req {
            ApiRequest::Hello { .. } => RequestTag::Hello,
            ApiRequest::Open { .. } => RequestTag::Open,
            ApiRequest::Insert { .. } => RequestTag::Insert,
            ApiRequest::Delete { .. } => RequestTag::Delete,
            ApiRequest::Query { .. } => RequestTag::Query,
            ApiRequest::Stats { .. } => RequestTag::Stats,
            ApiRequest::Checkpoint { .. } => RequestTag::Checkpoint,
            ApiRequest::Evict { .. } => RequestTag::Evict,
            ApiRequest::Close { .. } => RequestTag::Close,
            ApiRequest::ServerStats => RequestTag::ServerStats,
            ApiRequest::Shutdown => RequestTag::Shutdown,
            ApiRequest::Health => RequestTag::Health,
            ApiRequest::Unknown { .. } => RequestTag::Unknown,
        }
    }

    /// The wire error code a response carries, if it is a refusal or
    /// failure (the stable 200–231 registry; `Overloaded` and
    /// `Unsupported` map to their coded equivalents 220/221).
    fn response_error(resp: &ApiResponse) -> Option<u16> {
        match resp {
            ApiResponse::Error { code, .. } => Some(*code),
            ApiResponse::Overloaded { .. } => Some(220),
            ApiResponse::Unsupported { .. } => Some(221),
            _ => None,
        }
    }

    /// Histogram class for the request's tenant: sharded specs pay a
    /// merge on query, so their tails are tracked separately. Unknown
    /// and service-scoped requests count as single.
    fn request_class(&self, rid: RequestId) -> RequestClass {
        let shards = match self.slots.get(&rid.tenant) {
            Some(Slot::Live(t)) => t.spec.shards,
            Some(Slot::Evicted { spec, .. }) => spec.shards,
            None => 1,
        };
        if shards > 1 {
            RequestClass::Sharded
        } else {
            RequestClass::Single
        }
    }

    /// Publishes the service gauges off the O(1) maintained fields.
    fn publish_gauges(&self) {
        svc::set_gauge(svc::Gauge::TenantsLive, self.live_tenants);
        svc::set_gauge(svc::Gauge::TenantsEvicted, self.evicted_tenants);
        svc::set_gauge(svc::Gauge::SpillBytes, self.spill_bytes);
        svc::set_gauge(svc::Gauge::AdmissionRejects, self.overloaded);
        svc::set_gauge(svc::Gauge::AdmissionSheds, self.shed_evictions);
        svc::set_gauge(svc::Gauge::Restores, self.restores);
    }

    fn open(&mut self, tenant: TenantId, spec: TenantSpec, rid: RequestId) -> ApiResponse {
        enum Known {
            LiveSame,
            EvictedSame,
            SpecMismatch,
            Absent,
        }
        let known = match self.slots.get(&tenant) {
            Some(Slot::Live(t)) if t.spec == spec => Known::LiveSame,
            Some(Slot::Evicted { spec: old, .. }) if *old == spec => Known::EvictedSame,
            Some(_) => Known::SpecMismatch,
            None => Known::Absent,
        };
        match known {
            // Idempotent re-open (retried frame).
            Known::LiveSame => {
                return ApiResponse::Opened {
                    tenant,
                    restored: false,
                }
            }
            Known::EvictedSame => {
                if let Some(refusal) = self.admit_restore(tenant, rid) {
                    return refusal;
                }
                return match self.ensure_live(tenant, rid) {
                    Ok(_) => ApiResponse::Opened {
                        tenant,
                        restored: true,
                    },
                    Err(e) => Self::err(e),
                };
            }
            Known::SpecMismatch => return Self::err(ApiError::TenantExists { tenant }.into()),
            Known::Absent => {}
        }
        if self.config.max_tenants > 0 && self.slots.len() >= self.config.max_tenants {
            self.overloaded += 1;
            return ApiResponse::Overloaded {
                measured_bytes: self.total_measured as u64,
                budget_bytes: self.config.budget_bytes as u64,
            };
        }
        if let Some(refusal) = self.admit(tenant, rid) {
            return refusal;
        }
        let backend = match Backend::build(&spec) {
            Ok(b) => b,
            Err(e) => return Self::err(e),
        };
        let measured = backend.measured_bytes();
        self.total_measured += measured;
        self.peak_measured = self.peak_measured.max(self.total_measured);
        self.slots.insert(
            tenant,
            Slot::Live(Tenant {
                spec,
                backend,
                measured,
                peak_measured: measured,
            }),
        );
        self.live_tenants += 1;
        sbc_obs::counter!("serve.tenants.opened").incr();
        svc::observe_tenant_state(tenant, TenantState::Live, measured as u64);
        ApiResponse::Opened {
            tenant,
            restored: false,
        }
    }

    fn mutate(
        &mut self,
        tenant: TenantId,
        points: &[Point],
        delete: bool,
        rid: RequestId,
    ) -> ApiResponse {
        // An evicted target's footprint is admitted *before* the
        // restore pulls it back into memory; the refusal leaves the
        // tenant on disk and the budget intact.
        if let Some(refusal) = self.admit_restore(tenant, rid) {
            return refusal;
        }
        if let Err(e) = self.ensure_live(tenant, rid) {
            return Self::err(e);
        }
        if let Some(refusal) = self.admit(tenant, rid) {
            return refusal;
        }
        let Some(Slot::Live(t)) = self.slots.get_mut(&tenant) else {
            unreachable!("ensure_live succeeded");
        };
        let dims = t.spec.dims as usize;
        if let Some(bad) = points.iter().find(|p| p.coords().len() != dims) {
            return Self::err(
                ApiError::InvalidPoints {
                    message: format!(
                        "tenant {tenant} is {dims}-dimensional, got a {}-dimensional point",
                        bad.coords().len()
                    ),
                }
                .into(),
            );
        }
        let _backend_span = trace::span("svc.backend", rid.causal(), points.len() as u64);
        if delete {
            t.backend.delete_batch(points);
        } else {
            t.backend.insert_batch(points);
        }
        let net_count = t.backend.net_count();
        self.ops_total += points.len() as u64;
        sbc_obs::counter!("serve.ops").add(points.len() as u64);
        self.remeasure(tenant);
        ApiResponse::Applied {
            tenant,
            applied: points.len() as u64,
            net_count,
        }
    }

    fn query(&mut self, tenant: TenantId, rid: RequestId) -> ApiResponse {
        // Reads on a live tenant are never refused, but a read that
        // must *restore* grows the service and goes through the same
        // restore admission as mutations.
        if let Some(refusal) = self.admit_restore(tenant, rid) {
            return refusal;
        }
        if let Err(e) = self.ensure_live(tenant, rid) {
            return Self::err(e);
        }
        let Some(Slot::Live(t)) = self.slots.get(&tenant) else {
            unreachable!("ensure_live succeeded");
        };
        let _backend_span = trace::span("svc.backend", rid.causal(), 0);
        match t.backend.finish_ref() {
            Ok(cs) => ApiResponse::CoresetReply {
                tenant,
                o: cs.o,
                points: cs
                    .entries()
                    .iter()
                    .map(|e| CoresetPoint {
                        point: e.point.clone(),
                        weight: e.weight,
                        level: e.level,
                        part: e.part as u64,
                    })
                    .collect(),
            },
            Err(e) => Self::err(e),
        }
    }

    fn stats(&mut self, tenant: TenantId) -> ApiResponse {
        // Stats must not force a restore — observability stays cheap.
        match self.slots.get(&tenant) {
            Some(Slot::Live(t)) => ApiResponse::StatsReply {
                tenant,
                stats: t.stats(t.spec.shards.max(1)),
            },
            Some(Slot::Evicted { spec, .. }) => ApiResponse::StatsReply {
                tenant,
                stats: TenantStats {
                    shards: spec.shards.max(1),
                    evicted: true,
                    ..TenantStats::default()
                },
            },
            None => Self::err(ApiError::UnknownTenant { tenant }.into()),
        }
    }

    fn checkpoint(&mut self, tenant: TenantId, rid: RequestId) -> ApiResponse {
        if let Some(refusal) = self.admit_restore(tenant, rid) {
            return refusal;
        }
        if let Err(e) = self.ensure_live(tenant, rid) {
            return Self::err(e);
        }
        let Some(Slot::Live(t)) = self.slots.get(&tenant) else {
            unreachable!("ensure_live succeeded");
        };
        let _backend_span = trace::span("svc.backend", rid.causal(), 0);
        match t.backend.checkpoint_blobs() {
            Ok(blobs) => ApiResponse::CheckpointReply {
                tenant,
                bytes: to_bytes(&(t.spec, blobs)),
            },
            Err(e) => Self::err(e),
        }
    }

    fn evict(&mut self, tenant: TenantId) -> ApiResponse {
        match self.slots.get(&tenant) {
            Some(Slot::Evicted { bytes, .. }) => {
                // Idempotent re-evict (retried frame).
                let bytes = *bytes;
                ApiResponse::Evicted { tenant, bytes }
            }
            Some(Slot::Live(_)) => match self.evict_tenant(tenant) {
                Ok(bytes) => ApiResponse::Evicted { tenant, bytes },
                Err(e) => Self::err(e),
            },
            None => Self::err(ApiError::UnknownTenant { tenant }.into()),
        }
    }

    fn close(&mut self, tenant: TenantId) -> ApiResponse {
        match self.slots.remove(&tenant) {
            Some(Slot::Live(t)) => {
                self.total_measured -= t.measured;
                self.live_tenants -= 1;
                svc::observe_tenant_state(tenant, TenantState::Closed, 0);
                ApiResponse::Closed { tenant }
            }
            Some(Slot::Evicted { spill, bytes, .. }) => {
                self.evicted_tenants -= 1;
                self.spill_bytes -= bytes;
                if let Spill::Disk(path) = spill {
                    let _ = std::fs::remove_file(path);
                }
                svc::observe_tenant_state(tenant, TenantState::Closed, 0);
                ApiResponse::Closed { tenant }
            }
            None => Self::err(ApiError::UnknownTenant { tenant }.into()),
        }
    }

    /// Maps one request frame to one response frame, record-for-record.
    /// Frame-level decode failures produce a single coded error record.
    pub fn handle_frame(&mut self, frame: &[u8]) -> Vec<u8> {
        match unframe_requests(frame) {
            Ok(reqs) => {
                let resps: Vec<ApiResponse> = reqs.iter().map(|r| self.handle(r)).collect();
                frame_responses(&resps)
            }
            Err(e) => {
                self.frame_errors += 1;
                sbc_obs::counter!("serve.frame_errors").incr();
                frame_responses(&[ApiResponse::Error {
                    code: e.code(),
                    message: e.to_string(),
                }])
            }
        }
    }

    /// Envelope entry point for lossy transports: a `(machine, seq)`
    /// wrapper around a frame, answered with a same-`seq` envelope. A
    /// re-delivery of the machine's last sequence number is answered
    /// from cache **without re-applying the frame** — duplicate and
    /// retried deliveries are idempotent.
    pub fn handle_envelope(&mut self, envelope_bytes: &[u8]) -> Vec<u8> {
        let Some(env) = from_bytes::<Envelope>(envelope_bytes) else {
            self.frame_errors += 1;
            sbc_obs::counter!("serve.frame_errors").incr();
            let frame = frame_responses(&[ApiResponse::Error {
                code: ApiError::Truncated.code(),
                message: "undecodable envelope".to_string(),
            }]);
            return to_bytes(&Envelope {
                machine: 0,
                seq: 0,
                payload: frame,
            });
        };
        if let Some((last_seq, cached)) = self.dedup.get(&env.machine) {
            if *last_seq == env.seq {
                sbc_obs::counter!("serve.dedup_hits").incr();
                return cached.clone();
            }
        }
        let frame = self.handle_frame(&env.payload);
        let reply = to_bytes(&Envelope {
            machine: 0,
            seq: env.seq,
            payload: frame,
        });
        if !self.dedup.contains_key(&env.machine) {
            if self.dedup_order.len() >= DEDUP_MAX_MACHINES {
                // Displace the longest-known machine — a client-chosen
                // id cycling through fresh values evicts idle windows
                // instead of growing the map.
                if let Some(oldest) = self.dedup_order.pop_front() {
                    self.dedup.remove(&oldest);
                }
            }
            self.dedup_order.push_back(env.machine);
        }
        self.dedup.insert(env.machine, (env.seq, reply.clone()));
        reply
    }
}
