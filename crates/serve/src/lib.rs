//! # sbc-serve — the multi-tenant coreset service tier
//!
//! A long-running process multiplexing thousands of independent tenant
//! streams, each backed by its own
//! [`StreamCoresetBuilder`](sbc::StreamCoresetBuilder) (or
//! [`ShardedIngest`](sbc::ShardedIngest) when the tenant asks for
//! shards), behind the stable versioned [`sbc::api`] request protocol:
//!
//! * **batched ingestion** — every transmission is an `SBCSRV1` frame
//!   carrying a batch of length-prefixed records
//!   (insert/delete/query/checkpoint/evict), answered record-for-record;
//! * **admission control** — the service sums each live tenant's
//!   `measured_bytes` (the [`SpaceReport`](sbc::SpaceReport) memory
//!   truth) and, past a configurable budget, either refuses mutations
//!   with a `429`-style [`ApiResponse::Overloaded`](sbc::api::ApiResponse)
//!   or sheds load by evicting the fattest idle tenants to disk
//!   ([`OverloadPolicy`]);
//! * **checkpoint-based eviction** — an evicted tenant becomes a
//!   checkpoint blob on disk (or in memory when no spill directory is
//!   configured) and is restored *transparently* by its next request;
//!   because checkpoints round-trip bit-identically, an
//!   evict→restore→continue tenant produces exactly the coreset of an
//!   uninterrupted run (property-tested in `tests/evict_restore.rs`);
//! * **live queries** — [`ApiRequest::Query`](sbc::api::ApiRequest)
//!   emits the coreset of the stream *so far* via the non-perturbing
//!   `finish_ref` path, mid-stream;
//! * **fault-tolerant transport** — [`client::Lossy`] wraps frames in
//!   the distributed layer's `(machine, seq)` envelopes and replays the
//!   seeded [`FaultPlan`](sbc::FaultPlan) drop/duplicate faults; the
//!   service deduplicates by sequence number so retries and duplicates
//!   are idempotent.
//!
//! Two binaries ship with the crate: `sbc-serve` (the server loop /
//! self-driving demo, see the README quickstart) and `serve_bench` (the
//! ≥1000-tenant load generator feeding the `"serving"` section of
//! `BENCH_streaming.json`).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod fleet;
pub mod service;

pub use client::{Client, InProcess, Lossy, MigrationManifest, Transport};
pub use fleet::{Fleet, FleetRouter, FleetServer, MigrationReport, VNODES_PER_SERVER};
pub use service::{
    CoresetService, MigrationStats, OverloadPolicy, ServeConfig, REPLAY_QUEUE_MAX_OPS,
};
