//! The typed client over the `SBCSRV1` protocol, generic over a
//! pluggable [`Transport`] — in-process for tests and the bench, lossy
//! (seeded drop/duplicate faults with retries) for chaos runs, and a
//! future socket transport without touching the typed layer.

use sbc::api::{
    frame_requests, unframe_responses, ApiError, ApiRequest, ApiResponse, CoresetPoint,
    HealthReport, ReplayOp, ServerStatsReport, TenantId, TenantSpec, TenantStats,
    MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use sbc::distributed::wire::Envelope;
use sbc::streaming::codec::{from_bytes, to_bytes};
use sbc::{FaultPlan, Point, SbcError};

use crate::service::CoresetService;

/// Carries one request frame to a service and returns its response
/// frame. Implementations own delivery semantics (retries, dedup);
/// the typed [`Client`] above them only sees bytes-in/bytes-out.
pub trait Transport {
    /// Delivers `frame` and returns the matching response frame.
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, SbcError>;
}

/// Zero-copy-in-spirit transport: the service lives inside the client
/// process, but every round trip still crosses the real byte format, so
/// in-process tests exercise exactly what a socket would carry.
pub struct InProcess {
    service: CoresetService,
}

impl InProcess {
    /// Wraps a service.
    pub fn new(service: CoresetService) -> InProcess {
        InProcess { service }
    }

    /// Direct access to the wrapped service (stats draining in benches).
    pub fn service_mut(&mut self) -> &mut CoresetService {
        &mut self.service
    }
}

impl Transport for InProcess {
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, SbcError> {
        Ok(self.service.handle_frame(frame))
    }
}

/// Delivery counters a [`Lossy`] transport accumulates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LossyStats {
    /// Deliveries the fault plan swallowed (client retried).
    pub drops: u64,
    /// Deliveries the fault plan duplicated (service deduplicated).
    pub dups: u64,
    /// Extra attempts beyond the first, across all round trips.
    pub retries: u64,
}

/// A transport that wraps every frame in a `(machine, seq)` envelope
/// and replays a seeded [`FaultPlan`]'s drop/duplicate decisions against
/// it — the same fault machinery the distributed protocol runs under.
/// Dropped deliveries are retried with the **same** sequence number;
/// duplicated deliveries hit the service twice. Either way the service's
/// per-client dedup window keeps the observable behavior identical to a
/// faultless run, which is exactly what the chaos proptests pin.
pub struct Lossy {
    service: CoresetService,
    plan: FaultPlan,
    machine: u32,
    seq: u64,
    deliveries: u64,
    /// Accumulated delivery counters.
    pub stats: LossyStats,
}

impl Lossy {
    /// Wraps a service with fault-plan-driven delivery as `machine`.
    pub fn new(service: CoresetService, plan: FaultPlan, machine: u32) -> Lossy {
        Lossy {
            service,
            plan,
            machine,
            seq: 0,
            deliveries: 0,
            stats: LossyStats::default(),
        }
    }

    /// Direct access to the wrapped service.
    pub fn service_mut(&mut self) -> &mut CoresetService {
        &mut self.service
    }
}

impl Transport for Lossy {
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, SbcError> {
        self.seq += 1;
        let env_bytes = to_bytes(&Envelope {
            machine: self.machine,
            seq: self.seq,
            payload: frame.to_vec(),
        });
        let max_attempts = self.plan.max_retries.max(1);
        for attempt in 0..max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            let idx = self.deliveries;
            self.deliveries += 1;
            if self.plan.drops_delivery(idx) {
                self.stats.drops += 1;
                continue; // lost on the wire; retry with the same seq
            }
            if self.plan.duplicates_delivery(idx) {
                self.stats.dups += 1;
                let _ = self.service.handle_envelope(&env_bytes);
            }
            let reply_bytes = self.service.handle_envelope(&env_bytes);
            let reply: Envelope = from_bytes(&reply_bytes).ok_or_else(|| ApiError::Transport {
                message: "undecodable reply envelope".to_string(),
            })?;
            if reply.seq != self.seq {
                return Err(ApiError::Transport {
                    message: format!("reply seq {} for request seq {}", reply.seq, self.seq),
                }
                .into());
            }
            return Ok(reply.payload);
        }
        Err(ApiError::Transport {
            message: format!("no delivery after {max_attempts} attempts"),
        }
        .into())
    }
}

/// The typed client: one method per request kind, plus batched access.
/// Every call crosses the wire format; coded
/// [`ApiResponse::Error`]/[`ApiResponse::Overloaded`] records come back
/// as [`SbcError::Api`] values carrying the peer's stable code.
pub struct Client<T: Transport> {
    transport: T,
    version: Option<u32>,
}

impl<T: Transport> Client<T> {
    /// Wraps a transport. Call [`Client::hello`] before anything else —
    /// the convenience constructors on the concrete transports do.
    pub fn new(transport: T) -> Client<T> {
        Client {
            transport,
            version: None,
        }
    }

    /// The negotiated protocol version, once [`Client::hello`] ran.
    pub fn version(&self) -> Option<u32> {
        self.version
    }

    /// The underlying transport (stats draining in benches).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Sends a whole batch in one frame and returns the per-record
    /// responses, in order.
    pub fn call_batch(&mut self, requests: &[ApiRequest]) -> Result<Vec<ApiResponse>, SbcError> {
        let reply = self.transport.round_trip(&frame_requests(requests))?;
        let responses = unframe_responses(&reply)?;
        if responses.len() != requests.len() {
            // A frame-level failure legitimately collapses to a single
            // error record; surface it as the coded error it carries.
            if let [ApiResponse::Error { code, message }] = responses.as_slice() {
                return Err(ApiError::Remote {
                    code: *code,
                    message: message.clone(),
                }
                .into());
            }
            return Err(ApiError::UnexpectedResponse {
                message: format!(
                    "{} responses for {} requests",
                    responses.len(),
                    requests.len()
                ),
            }
            .into());
        }
        Ok(responses)
    }

    fn call(&mut self, request: ApiRequest) -> Result<ApiResponse, SbcError> {
        let mut responses = self.call_batch(std::slice::from_ref(&request))?;
        Ok(responses.remove(0))
    }

    /// Converts refusal/error records into coded errors; passes every
    /// other record through.
    fn ok(response: ApiResponse) -> Result<ApiResponse, SbcError> {
        match response {
            ApiResponse::Error { code, message } => Err(ApiError::Remote { code, message }.into()),
            ApiResponse::Overloaded {
                measured_bytes,
                budget_bytes,
            } => Err(ApiError::Overloaded {
                measured_bytes,
                budget_bytes,
            }
            .into()),
            ApiResponse::Unsupported { tag } => Err(ApiError::Unsupported { tag }.into()),
            ApiResponse::Moved { tenant, peer } => Err(ApiError::Moved { tenant, peer }.into()),
            other => Ok(other),
        }
    }

    fn unexpected(response: &ApiResponse) -> SbcError {
        ApiError::UnexpectedResponse {
            message: format!("{response:?}"),
        }
        .into()
    }

    /// Negotiates the protocol version; must precede other calls.
    pub fn hello(&mut self) -> Result<u32, SbcError> {
        let resp = Self::ok(self.call(ApiRequest::Hello {
            min_version: MIN_SUPPORTED_VERSION,
            max_version: PROTOCOL_VERSION,
        })?)?;
        match resp {
            ApiResponse::HelloAck { version } => {
                self.version = Some(version);
                Ok(version)
            }
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Opens (or transparently restores) a tenant. Returns whether a
    /// restore happened.
    pub fn open(&mut self, tenant: TenantId, spec: TenantSpec) -> Result<bool, SbcError> {
        match Self::ok(self.call(ApiRequest::Open { tenant, spec })?)? {
            ApiResponse::Opened { restored, .. } => Ok(restored),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Inserts a batch; returns the tenant's net count afterwards.
    pub fn insert(&mut self, tenant: TenantId, points: &[Point]) -> Result<i64, SbcError> {
        let req = ApiRequest::Insert {
            tenant,
            points: points.to_vec(),
        };
        match Self::ok(self.call(req)?)? {
            ApiResponse::Applied { net_count, .. } => Ok(net_count),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Deletes a batch; returns the tenant's net count afterwards.
    pub fn delete(&mut self, tenant: TenantId, points: &[Point]) -> Result<i64, SbcError> {
        let req = ApiRequest::Delete {
            tenant,
            points: points.to_vec(),
        };
        match Self::ok(self.call(req)?)? {
            ApiResponse::Applied { net_count, .. } => Ok(net_count),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// The tenant's live coreset, mid-stream: `(o, points)`.
    pub fn query(&mut self, tenant: TenantId) -> Result<(f64, Vec<CoresetPoint>), SbcError> {
        match Self::ok(self.call(ApiRequest::Query { tenant })?)? {
            ApiResponse::CoresetReply { o, points, .. } => Ok((o, points)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Per-tenant accounting.
    pub fn stats(&mut self, tenant: TenantId) -> Result<TenantStats, SbcError> {
        match Self::ok(self.call(ApiRequest::Stats { tenant })?)? {
            ApiResponse::StatsReply { stats, .. } => Ok(stats),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Full checkpoint bytes for external storage.
    pub fn checkpoint(&mut self, tenant: TenantId) -> Result<Vec<u8>, SbcError> {
        match Self::ok(self.call(ApiRequest::Checkpoint { tenant })?)? {
            ApiResponse::CheckpointReply { bytes, .. } => Ok(bytes),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Evicts the tenant to the service's spill store; returns the blob
    /// size.
    pub fn evict(&mut self, tenant: TenantId) -> Result<u64, SbcError> {
        match Self::ok(self.call(ApiRequest::Evict { tenant })?)? {
            ApiResponse::Evicted { bytes, .. } => Ok(bytes),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Drops the tenant for good.
    pub fn close(&mut self, tenant: TenantId) -> Result<(), SbcError> {
        match Self::ok(self.call(ApiRequest::Close { tenant })?)? {
            ApiResponse::Closed { .. } => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Whole-service accounting.
    pub fn server_stats(&mut self) -> Result<ServerStatsReport, SbcError> {
        match Self::ok(self.call(ApiRequest::ServerStats)?)? {
            ApiResponse::ServerStatsReply { stats } => Ok(stats),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Liveness/readiness snapshot for scrapers and load balancers.
    pub fn health(&mut self) -> Result<HealthReport, SbcError> {
        match Self::ok(self.call(ApiRequest::Health)?)? {
            ApiResponse::HealthReply { report } => Ok(report),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks the server loop to exit.
    pub fn shutdown(&mut self) -> Result<(), SbcError> {
        match Self::ok(self.call(ApiRequest::Shutdown)?)? {
            ApiResponse::ShuttingDown => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Freezes a tenant for outbound migration and returns the
    /// transfer manifest. Idempotent while the migration is pending.
    pub fn migrate_out(
        &mut self,
        tenant: TenantId,
        chunk_bytes: u32,
    ) -> Result<MigrationManifest, SbcError> {
        let req = ApiRequest::MigrateOut {
            tenant,
            chunk_bytes,
        };
        match Self::ok(self.call(req)?)? {
            ApiResponse::MigrateManifest {
                spec,
                total_chunks,
                total_bytes,
                measured_bytes,
                seq_barrier,
                ..
            } => Ok(MigrationManifest {
                spec,
                total_chunks,
                total_bytes,
                measured_bytes,
                seq_barrier,
            }),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Delivers one checkpoint chunk to a receiving peer; returns the
    /// bytes it has buffered so far.
    #[allow(clippy::too_many_arguments)]
    pub fn send_chunk(
        &mut self,
        tenant: TenantId,
        spec: TenantSpec,
        chunk: u32,
        total_chunks: u32,
        total_bytes: u64,
        measured_bytes: u64,
        payload: Vec<u8>,
    ) -> Result<u64, SbcError> {
        let req = ApiRequest::ChunkedCheckpoint {
            tenant,
            spec,
            chunk,
            total_chunks,
            total_bytes,
            measured_bytes,
            payload,
        };
        match Self::ok(self.call(req)?)? {
            ApiResponse::ChunkAck { received_bytes, .. } => Ok(received_bytes),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Drains buffered replay batches from a frozen source:
    /// `(batches, points_still_queued)`.
    pub fn drain_replay(
        &mut self,
        tenant: TenantId,
        max_ops: u32,
    ) -> Result<(Vec<ReplayOp>, u64), SbcError> {
        let req = ApiRequest::DrainReplay { tenant, max_ops };
        match Self::ok(self.call(req)?)? {
            ApiResponse::ReplayBatch { ops, remaining, .. } => Ok((ops, remaining)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Flips ownership of a drained tenant to `peer`.
    pub fn cut_over(&mut self, tenant: TenantId, peer: u32) -> Result<(), SbcError> {
        match Self::ok(self.call(ApiRequest::CutOver { tenant, peer })?)? {
            ApiResponse::MigrateAck {
                committed: true, ..
            } => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Abandons an in-progress migration; the tenant stays local on
    /// the source (losslessly) or is discarded on a receiver.
    pub fn migrate_abort(&mut self, tenant: TenantId) -> Result<(), SbcError> {
        match Self::ok(self.call(ApiRequest::MigrateAbort { tenant })?)? {
            ApiResponse::MigrateAck {
                committed: false, ..
            } => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }
}

/// A frozen tenant's transfer manifest, as returned by
/// [`Client::migrate_out`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MigrationManifest {
    /// The tenant's pipeline spec (echoed into every chunk).
    pub spec: TenantSpec,
    /// Chunks the coordinator must ship.
    pub total_chunks: u32,
    /// Total container bytes across all chunks.
    pub total_bytes: u64,
    /// The tenant's measured footprint at the seq barrier.
    pub measured_bytes: u64,
    /// The source's request seq at freeze time.
    pub seq_barrier: u64,
}
