//! The in-memory fleet: a consistent-hash router over tenant ids, a
//! redirect-following coordinator, and the live-migration driver that
//! ships a frozen tenant's chunked checkpoint from one
//! [`CoresetService`] to another over the lossy envelope layer.
//!
//! The pieces compose bottom-up:
//!
//! * [`FleetRouter`] — a pure consistent-hash ring
//!   ([`VNODES_PER_SERVER`] vnodes per server, `splitmix64` points).
//!   Routing is a function of the server-id set and the tenant id
//!   alone, so two processes that agree on membership agree on every
//!   placement without talking to each other.
//! * [`FleetServer`] — the byte-level server surface the fleet drives
//!   (`handle_envelope`). Implemented by [`CoresetService`]; tests
//!   implement it for version shims to prove old-peer interop.
//! * [`Fleet`] — owns the servers, routes typed requests, follows
//!   [`ApiResponse::Moved`] redirects transparently, and drives the
//!   migration protocol: freeze at the seq barrier
//!   ([`Fleet::migrate_begin`]), ship chunks, drain+replay the
//!   double-buffered ops, and atomically cut over
//!   ([`Fleet::migrate_finish`]). Every byte crosses the same
//!   `SBCSRV1`-in-envelope wire a socket would carry, through the
//!   seeded [`FaultPlan`] drop/duplicate machinery.
//!
//! A peer that predates the migration tags answers `Unsupported` (it
//! skips the record body by length prefix); the driver then aborts and
//! the tenant stays local — fleet churn can strand a tenant on an old
//! server, but it can never lose one.

use std::collections::HashMap;

use sbc::api::{
    frame_requests, unframe_responses, ApiError, ApiRequest, ApiResponse, TenantId, TenantSpec,
};
use sbc::distributed::wire::Envelope;
use sbc::streaming::codec::{from_bytes, to_bytes};
use sbc::{FaultPlan, SbcError};
use sbc_obs::fault::splitmix64;

use crate::client::LossyStats;
use crate::service::{CoresetService, MigrationStats};

/// Virtual nodes each server contributes to the ring. 64 keeps the
/// per-server share within a few percent of uniform at fleet sizes the
/// service tier targets, while a membership change still rehashes only
/// the vnode arcs the departed server owned.
pub const VNODES_PER_SERVER: u32 = 64;

/// Most [`ApiResponse::Moved`] redirects one routed call will chase
/// before giving up — bounds pathological redirect cycles.
const MAX_REDIRECT_HOPS: u32 = 4;

/// Domain-separation salt for tenant hashes (vs vnode points).
const TENANT_SALT: u64 = 0x7465_6e61_6e74_5f68; // "tenant_h"

/// A consistent-hash ring over server ids: each server owns
/// [`VNODES_PER_SERVER`] points, a tenant routes to the first point at
/// or after its hash (wrapping). Pure — the ring is a deterministic
/// function of the membership set, so any process that knows the
/// membership computes identical placements.
#[derive(Clone, Debug, Default)]
pub struct FleetRouter {
    servers: Vec<u32>,
    /// `(point, server)` sorted by point. Points are `splitmix64` of
    /// the (server, vnode) pair; splitmix64 is a bijection, so
    /// distinct pairs can never collide into a tie.
    ring: Vec<(u64, u32)>,
}

impl FleetRouter {
    /// Builds a ring over `servers` (duplicates ignored).
    pub fn new(servers: &[u32]) -> FleetRouter {
        let mut router = FleetRouter::default();
        for &s in servers {
            router.add_server(s);
        }
        router
    }

    /// The current membership, in insertion order.
    pub fn servers(&self) -> &[u32] {
        &self.servers
    }

    /// Adds a server (no-op if already present).
    pub fn add_server(&mut self, id: u32) {
        if self.servers.contains(&id) {
            return;
        }
        self.servers.push(id);
        for v in 0..VNODES_PER_SERVER {
            self.ring
                .push((splitmix64((u64::from(v) << 32) | u64::from(id)), id));
        }
        self.ring.sort_unstable();
    }

    /// Removes a server (no-op if absent). Only the departed server's
    /// vnode arcs change hands — every other placement is untouched.
    pub fn remove_server(&mut self, id: u32) {
        self.servers.retain(|&s| s != id);
        self.ring.retain(|&(_, s)| s != id);
    }

    /// The server owning `tenant`, or `None` on an empty ring.
    pub fn route(&self, tenant: TenantId) -> Option<u32> {
        if self.ring.is_empty() {
            return None;
        }
        let h = splitmix64(tenant ^ TENANT_SALT);
        let at = self.ring.partition_point(|&(point, _)| point < h);
        let (_, server) = self.ring[if at == self.ring.len() { 0 } else { at }];
        Some(server)
    }
}

/// The byte-level surface the fleet drives: one envelope in, one
/// envelope out — exactly what a socket peer would expose. Implemented
/// by [`CoresetService`]; tests implement it for old-version shims.
pub trait FleetServer {
    /// Handles one `(machine, seq)`-enveloped request frame.
    fn handle_envelope(&mut self, envelope_bytes: &[u8]) -> Vec<u8>;

    /// Local read of chunk `index` of a frozen tenant's outbound
    /// snapshot — the source-driven shipping path. Servers that do not
    /// speak the migration protocol have none.
    fn outbound_chunk(&self, tenant: TenantId, index: u32) -> Option<Vec<u8>> {
        let _ = (tenant, index);
        None
    }

    /// Point-in-time migration counters, when this server tracks them
    /// (benches aggregate these fleet-wide).
    fn migration_stats(&self) -> Option<MigrationStats> {
        None
    }
}

impl FleetServer for CoresetService {
    fn handle_envelope(&mut self, envelope_bytes: &[u8]) -> Vec<u8> {
        CoresetService::handle_envelope(self, envelope_bytes)
    }

    fn outbound_chunk(&self, tenant: TenantId, index: u32) -> Option<Vec<u8>> {
        CoresetService::outbound_chunk(self, tenant, index)
    }

    fn migration_stats(&self) -> Option<MigrationStats> {
        Some(CoresetService::migration_stats(self))
    }
}

/// The outcome of one [`Fleet::migrate`] (or `migrate_begin` +
/// `migrate_finish`) run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationReport {
    /// The migrated tenant.
    pub tenant: TenantId,
    /// The source server.
    pub from: u32,
    /// The intended target server.
    pub to: u32,
    /// Checkpoint chunks shipped.
    pub chunks: u32,
    /// Point-operations drained from the replay queue and re-applied
    /// on the target.
    pub replayed_ops: u64,
    /// `true` if ownership flipped to `to`; `false` if the transfer
    /// fell back to keeping the tenant on `from` (old peer, admission
    /// refusal) — never data loss either way.
    pub committed: bool,
}

/// One pending transfer the coordinator is mid-way through.
struct InFlight {
    from: u32,
    to: u32,
    spec: TenantSpec,
    chunks: u32,
}

/// A multi-process-shaped fleet in one address space: every request —
/// data-plane and migration-plane alike — crosses the envelope wire
/// format through the seeded fault plan, so tests and the bench drive
/// exactly the byte exchanges a socketed deployment would see.
pub struct Fleet {
    servers: HashMap<u32, Box<dyn FleetServer>>,
    router: FleetRouter,
    plan: FaultPlan,
    /// Per-server next envelope seq (each server deduplicates per
    /// machine, and the fleet is one machine to all of them).
    seqs: HashMap<u32, u64>,
    machine: u32,
    /// Global delivery counter indexing the fault plan.
    deliveries: u64,
    /// Learned ownership: seeded by the router at open, updated by
    /// committed cutovers and observed redirects.
    placement: HashMap<TenantId, u32>,
    in_flight: HashMap<TenantId, InFlight>,
    /// Accumulated delivery-fault counters.
    pub stats: LossyStats,
}

impl Fleet {
    /// An empty fleet delivering through `plan` as envelope machine 1.
    pub fn new(plan: FaultPlan) -> Fleet {
        Fleet {
            servers: HashMap::new(),
            router: FleetRouter::default(),
            plan,
            seqs: HashMap::new(),
            machine: 1,
            deliveries: 0,
            placement: HashMap::new(),
            in_flight: HashMap::new(),
            stats: LossyStats::default(),
        }
    }

    /// Adds a server process to the fleet and the ring.
    pub fn insert_server(&mut self, id: u32, server: Box<dyn FleetServer>) {
        self.servers.insert(id, server);
        self.router.add_server(id);
    }

    /// The membership router (placement inspection in tests/benches).
    pub fn router(&self) -> &FleetRouter {
        &self.router
    }

    /// The server currently believed to own `tenant`.
    pub fn owner(&self, tenant: TenantId) -> Option<u32> {
        self.placement
            .get(&tenant)
            .copied()
            .or_else(|| self.router.route(tenant))
    }

    /// Direct access to one server (stats draining in benches; the
    /// concrete type is whatever was inserted).
    pub fn server_mut(&mut self, id: u32) -> Option<&mut (dyn FleetServer + '_)> {
        self.servers.get_mut(&id).map(|b| &mut **b as _)
    }

    /// Fleet-wide migration counters: the field-wise sum over servers
    /// (`replay_queue_peak` takes the max — it is a high-water mark).
    pub fn migration_stats(&self) -> MigrationStats {
        let mut total = MigrationStats::default();
        for server in self.servers.values() {
            let Some(s) = server.migration_stats() else {
                continue;
            };
            total.migrations_out += s.migrations_out;
            total.migrations_in += s.migrations_in;
            total.chunks_in += s.chunks_in;
            total.cutovers += s.cutovers;
            total.aborts += s.aborts;
            total.replayed_ops += s.replayed_ops;
            total.replay_queue_peak = total.replay_queue_peak.max(s.replay_queue_peak);
        }
        total
    }

    /// One lossy envelope round trip to `server`: same-seq retries on
    /// drops, duplicate deliveries absorbed by the server's dedup
    /// window — the [`crate::client::Lossy`] delivery contract, fleet-wide.
    fn round_trip(&mut self, server: u32, frame: &[u8]) -> Result<Vec<u8>, SbcError> {
        let seq = {
            let s = self.seqs.entry(server).or_insert(0);
            *s += 1;
            *s
        };
        let env_bytes = to_bytes(&Envelope {
            machine: self.machine,
            seq,
            payload: frame.to_vec(),
        });
        let target = self
            .servers
            .get_mut(&server)
            .ok_or_else(|| ApiError::Transport {
                message: format!("no server {server} in the fleet"),
            })?;
        let max_attempts = self.plan.max_retries.max(1);
        for attempt in 0..max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            let idx = self.deliveries;
            self.deliveries += 1;
            if self.plan.drops_delivery(idx) {
                self.stats.drops += 1;
                continue;
            }
            if self.plan.duplicates_delivery(idx) {
                self.stats.dups += 1;
                let _ = target.handle_envelope(&env_bytes);
            }
            let reply_bytes = target.handle_envelope(&env_bytes);
            let reply: Envelope = from_bytes(&reply_bytes).ok_or_else(|| ApiError::Transport {
                message: "undecodable reply envelope".to_string(),
            })?;
            if reply.seq != seq {
                return Err(ApiError::Transport {
                    message: format!("reply seq {} for request seq {seq}", reply.seq),
                }
                .into());
            }
            return Ok(reply.payload);
        }
        Err(ApiError::Transport {
            message: format!("no delivery after {max_attempts} attempts"),
        }
        .into())
    }

    /// One typed record to a specific server.
    fn call(&mut self, server: u32, request: &ApiRequest) -> Result<ApiResponse, SbcError> {
        let frame = frame_requests(std::slice::from_ref(request));
        let reply = self.round_trip(server, &frame)?;
        let mut responses = unframe_responses(&reply)?;
        if responses.len() != 1 {
            if let [ApiResponse::Error { code, message }] = responses.as_slice() {
                return Err(ApiError::Remote {
                    code: *code,
                    message: message.clone(),
                }
                .into());
            }
            return Err(ApiError::UnexpectedResponse {
                message: format!("{} responses for 1 request", responses.len()),
            }
            .into());
        }
        Ok(responses.remove(0))
    }

    /// Routes a tenant-scoped record to its owner, chasing
    /// [`ApiResponse::Moved`] redirects (and learning from them) up to
    /// [`MAX_REDIRECT_HOPS`] times.
    fn call_routed(
        &mut self,
        tenant: TenantId,
        request: &ApiRequest,
    ) -> Result<ApiResponse, SbcError> {
        let mut server = self.owner(tenant).ok_or_else(|| ApiError::Transport {
            message: "empty fleet".to_string(),
        })?;
        for _ in 0..=MAX_REDIRECT_HOPS {
            match self.call(server, request)? {
                ApiResponse::Moved { peer, .. } => {
                    self.placement.insert(tenant, peer);
                    server = peer;
                }
                other => return Ok(other),
            }
        }
        Err(ApiError::Transport {
            message: format!("tenant {tenant}: redirect chase exceeded {MAX_REDIRECT_HOPS} hops"),
        }
        .into())
    }

    /// Converts refusal records to coded errors (the [`crate::Client`]
    /// contract, minus `Moved`, which `call_routed` consumes).
    fn ok(response: ApiResponse) -> Result<ApiResponse, SbcError> {
        match response {
            ApiResponse::Error { code, message } => Err(ApiError::Remote { code, message }.into()),
            ApiResponse::Overloaded {
                measured_bytes,
                budget_bytes,
            } => Err(ApiError::Overloaded {
                measured_bytes,
                budget_bytes,
            }
            .into()),
            ApiResponse::Unsupported { tag } => Err(ApiError::Unsupported { tag }.into()),
            ApiResponse::Moved { tenant, peer } => Err(ApiError::Moved { tenant, peer }.into()),
            other => Ok(other),
        }
    }

    fn unexpected(response: &ApiResponse) -> SbcError {
        ApiError::UnexpectedResponse {
            message: format!("{response:?}"),
        }
        .into()
    }

    /// Opens `tenant` on the server the ring routes it to.
    pub fn open(&mut self, tenant: TenantId, spec: TenantSpec) -> Result<bool, SbcError> {
        let server = self.owner(tenant).ok_or_else(|| ApiError::Transport {
            message: "empty fleet".to_string(),
        })?;
        self.placement.insert(tenant, server);
        match Self::ok(self.call_routed(tenant, &ApiRequest::Open { tenant, spec })?)? {
            ApiResponse::Opened { restored, .. } => Ok(restored),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Inserts a batch wherever the tenant lives; follows redirects.
    pub fn insert(&mut self, tenant: TenantId, points: &[sbc::Point]) -> Result<i64, SbcError> {
        let req = ApiRequest::Insert {
            tenant,
            points: points.to_vec(),
        };
        match Self::ok(self.call_routed(tenant, &req)?)? {
            ApiResponse::Applied { net_count, .. } => Ok(net_count),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Deletes a batch wherever the tenant lives; follows redirects.
    pub fn delete(&mut self, tenant: TenantId, points: &[sbc::Point]) -> Result<i64, SbcError> {
        let req = ApiRequest::Delete {
            tenant,
            points: points.to_vec(),
        };
        match Self::ok(self.call_routed(tenant, &req)?)? {
            ApiResponse::Applied { net_count, .. } => Ok(net_count),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// The tenant's live coreset: `(o, points)`. Follows redirects.
    pub fn query(
        &mut self,
        tenant: TenantId,
    ) -> Result<(f64, Vec<sbc::api::CoresetPoint>), SbcError> {
        match Self::ok(self.call_routed(tenant, &ApiRequest::Query { tenant })?)? {
            ApiResponse::CoresetReply { o, points, .. } => Ok((o, points)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Full checkpoint bytes, wherever the tenant lives.
    pub fn checkpoint(&mut self, tenant: TenantId) -> Result<Vec<u8>, SbcError> {
        match Self::ok(self.call_routed(tenant, &ApiRequest::Checkpoint { tenant })?)? {
            ApiResponse::CheckpointReply { bytes, .. } => Ok(bytes),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Closes the tenant wherever it lives (tombstones included).
    pub fn close(&mut self, tenant: TenantId) -> Result<(), SbcError> {
        match Self::ok(self.call_routed(tenant, &ApiRequest::Close { tenant })?)? {
            ApiResponse::Closed { .. } => {
                self.placement.remove(&tenant);
                Ok(())
            }
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Phase one of a migration: freeze the tenant on its owner and
    /// ship every checkpoint chunk to `to`. Returns `Ok(true)` when
    /// the snapshot landed (traffic may now interleave — it is
    /// double-buffered — until [`Fleet::migrate_finish`]), `Ok(false)`
    /// when the transfer fell back to keeping the tenant local (old
    /// peer or admission refusal on either side; lossless).
    pub fn migrate_begin(
        &mut self,
        tenant: TenantId,
        to: u32,
        chunk_bytes: u32,
    ) -> Result<bool, SbcError> {
        let from = self.owner(tenant).ok_or_else(|| ApiError::Transport {
            message: "empty fleet".to_string(),
        })?;
        if from == to {
            return Ok(false);
        }
        let manifest = match self.call(
            from,
            &ApiRequest::MigrateOut {
                tenant,
                chunk_bytes,
            },
        )? {
            ApiResponse::MigrateManifest {
                spec,
                total_chunks,
                total_bytes,
                measured_bytes,
                ..
            } => (spec, total_chunks, total_bytes, measured_bytes),
            // The source predates the migration protocol: nothing was
            // frozen, the tenant simply stays put.
            ApiResponse::Unsupported { .. } => return Ok(false),
            other => {
                return Err(match Self::ok(other) {
                    Ok(r) => Self::unexpected(&r),
                    Err(e) => e,
                })
            }
        };
        let (spec, total_chunks, total_bytes, measured_bytes) = manifest;
        for chunk in 0..total_chunks {
            let Some(payload) = self
                .servers
                .get(&from)
                .and_then(|s| s.outbound_chunk(tenant, chunk))
            else {
                self.abort_on(from, tenant);
                return Err(ApiError::Transport {
                    message: format!("tenant {tenant}: frozen chunk {chunk} unreadable"),
                }
                .into());
            };
            let req = ApiRequest::ChunkedCheckpoint {
                tenant,
                spec,
                chunk,
                total_chunks,
                total_bytes,
                measured_bytes,
                payload,
            };
            match self.call(to, &req)? {
                ApiResponse::ChunkAck { .. } => {}
                // The target cannot take the tenant (old build, or its
                // admission budget is full): unfreeze the source and
                // keep the tenant where it is.
                ApiResponse::Unsupported { .. } | ApiResponse::Overloaded { .. } => {
                    self.abort_on(from, tenant);
                    return Ok(false);
                }
                other => {
                    self.abort_on(from, tenant);
                    self.abort_on(to, tenant);
                    return Err(match Self::ok(other) {
                        Ok(r) => Self::unexpected(&r),
                        Err(e) => e,
                    });
                }
            }
        }
        self.in_flight.insert(
            tenant,
            InFlight {
                from,
                to,
                spec,
                chunks: total_chunks,
            },
        );
        Ok(true)
    }

    /// Best-effort abort of a pending transfer on one server.
    fn abort_on(&mut self, server: u32, tenant: TenantId) {
        let _ = self.call(server, &ApiRequest::MigrateAbort { tenant });
    }

    /// Abandons a transfer started by [`Fleet::migrate_begin`]:
    /// discards the receiver's half-assembled state and unfreezes the
    /// source. Lossless — the source double-applied every op while
    /// frozen, so it is already current.
    pub fn abort(&mut self, tenant: TenantId) -> Result<(), SbcError> {
        let Some(InFlight { from, to, .. }) = self.in_flight.remove(&tenant) else {
            return Err(ApiError::Transport {
                message: format!("tenant {tenant}: no transfer in flight"),
            }
            .into());
        };
        // A fully-shipped snapshot is already a live copy on the
        // receiver; a partial one is still assembling. Discard either.
        self.abort_on(to, tenant);
        let _ = self.call(to, &ApiRequest::Close { tenant });
        match Self::ok(self.call(from, &ApiRequest::MigrateAbort { tenant })?)? {
            ApiResponse::MigrateAck {
                committed: false, ..
            } => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Whole-service accounting for one member.
    pub fn server_stats(&mut self, server: u32) -> Result<sbc::api::ServerStatsReport, SbcError> {
        match Self::ok(self.call(server, &ApiRequest::ServerStats)?)? {
            ApiResponse::ServerStatsReply { stats } => Ok(stats),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Phase two: drain the source's replay queue into the target,
    /// then cut over. The drain loops until the queue is empty, so the
    /// cutover's `ReplayPending` barrier can only pass losslessly.
    pub fn migrate_finish(&mut self, tenant: TenantId) -> Result<MigrationReport, SbcError> {
        let Some(InFlight {
            from,
            to,
            spec,
            chunks,
        }) = self.in_flight.remove(&tenant)
        else {
            return Err(ApiError::Transport {
                message: format!("tenant {tenant}: no transfer in flight"),
            }
            .into());
        };
        let _ = spec;
        let mut replayed = 0u64;
        loop {
            let resp = Self::ok(self.call(
                from,
                &ApiRequest::DrainReplay {
                    tenant,
                    max_ops: 4096,
                },
            )?)?;
            let ApiResponse::ReplayBatch { ops, remaining, .. } = resp else {
                return Err(Self::unexpected(&resp));
            };
            if ops.is_empty() && remaining == 0 {
                break;
            }
            for op in ops {
                replayed += op.points.len() as u64;
                let req = if op.delete {
                    ApiRequest::Delete {
                        tenant,
                        points: op.points,
                    }
                } else {
                    ApiRequest::Insert {
                        tenant,
                        points: op.points,
                    }
                };
                match Self::ok(self.call(to, &req)?)? {
                    ApiResponse::Applied { .. } => {}
                    other => return Err(Self::unexpected(&other)),
                }
            }
            if remaining == 0 {
                break;
            }
        }
        match Self::ok(self.call(from, &ApiRequest::CutOver { tenant, peer: to })?)? {
            ApiResponse::MigrateAck {
                committed: true, ..
            } => {}
            other => return Err(Self::unexpected(&other)),
        }
        self.placement.insert(tenant, to);
        Ok(MigrationReport {
            tenant,
            from,
            to,
            chunks,
            replayed_ops: replayed,
            committed: true,
        })
    }

    /// Migrates a tenant end-to-end: freeze, ship, drain, cut over. A
    /// lossless fallback (old peer, admission refusal) reports
    /// `committed: false` with the tenant still serving on its source.
    pub fn migrate(
        &mut self,
        tenant: TenantId,
        to: u32,
        chunk_bytes: u32,
    ) -> Result<MigrationReport, SbcError> {
        let from = self.owner(tenant).ok_or_else(|| ApiError::Transport {
            message: "empty fleet".to_string(),
        })?;
        if !self.migrate_begin(tenant, to, chunk_bytes)? {
            return Ok(MigrationReport {
                tenant,
                from,
                to,
                chunks: 0,
                replayed_ops: 0,
                committed: false,
            });
        }
        self.migrate_finish(tenant)
    }

    /// Drains a server for decommission: removes it from the ring,
    /// then migrates every tenant it owns to wherever the shrunken
    /// ring routes them. Fallbacks (`committed: false`) leave those
    /// tenants serving on the drained server — reported, never lost.
    pub fn drain(
        &mut self,
        server: u32,
        chunk_bytes: u32,
    ) -> Result<Vec<MigrationReport>, SbcError> {
        self.router.remove_server(server);
        let mut owned: Vec<TenantId> = self
            .placement
            .iter()
            .filter(|&(_, s)| *s == server)
            .map(|(t, _)| *t)
            .collect();
        owned.sort_unstable();
        let mut reports = Vec::with_capacity(owned.len());
        for tenant in owned {
            let to = self
                .router
                .route(tenant)
                .ok_or_else(|| ApiError::Transport {
                    message: "drained the last server".to_string(),
                })?;
            reports.push(self.migrate(tenant, to, chunk_bytes)?);
        }
        Ok(reports)
    }
}
