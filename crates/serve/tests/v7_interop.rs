//! Old-peer interop, both directions: a v7 build predates the
//! migration tags (requests 12–16, responses 14–18), so it decodes
//! them as `Unknown` — skipping each body by the record's length
//! prefix — and answers [`ApiResponse::Unsupported`]. The coordinator
//! must turn that into a lossless keep-local fallback whether the
//! *target* or the *source* is the old binary. (The codec-level skip
//! itself is pinned by the `PreMigration*` decoders in `sbc::api`'s
//! tests; this file proves the fleet-level consequences.)

use sbc::api::{
    frame_requests, frame_responses, unframe_requests, unframe_responses, ApiRequest, ApiResponse,
    TenantSpec,
};
use sbc::distributed::wire::Envelope;
use sbc::streaming::codec::{from_bytes, to_bytes};
use sbc::{FaultPlan, GridParams, Point};
use sbc_serve::{Client, CoresetService, Fleet, FleetRouter, FleetServer, InProcess, ServeConfig};

/// Remap base pushing migration tags into a range *no* build knows, so
/// the wrapped (current) service decodes them exactly the way a v7
/// decoder would: `Unknown { tag }`, body skipped by length prefix.
const V7_UNKNOWN: u16 = 0x8000;

/// A v7-era peer: every migration-tagged record in, `Unsupported` out,
/// all other traffic served for real — with the envelope dedup window
/// (same `(machine, seq)` retries) behaving identically to a real old
/// binary's.
struct V7Peer {
    inner: CoresetService,
}

impl V7Peer {
    fn new() -> V7Peer {
        V7Peer {
            inner: CoresetService::new(ServeConfig::default()),
        }
    }

    fn pre_migration_view(req: ApiRequest) -> ApiRequest {
        let tag = match req {
            ApiRequest::MigrateOut { .. } => 12,
            ApiRequest::ChunkedCheckpoint { .. } => 13,
            ApiRequest::DrainReplay { .. } => 14,
            ApiRequest::CutOver { .. } => 15,
            ApiRequest::MigrateAbort { .. } => 16,
            other => return other,
        };
        ApiRequest::Unknown {
            tag: V7_UNKNOWN | tag,
        }
    }

    fn original_tag(resp: ApiResponse) -> ApiResponse {
        match resp {
            ApiResponse::Unsupported { tag } if tag & V7_UNKNOWN != 0 => ApiResponse::Unsupported {
                tag: tag & !V7_UNKNOWN,
            },
            other => other,
        }
    }
}

impl FleetServer for V7Peer {
    fn handle_envelope(&mut self, envelope_bytes: &[u8]) -> Vec<u8> {
        // Decode failures and unframeable payloads take the real
        // service's error paths untouched.
        let Some(env) = from_bytes::<Envelope>(envelope_bytes) else {
            return self.inner.handle_envelope(envelope_bytes);
        };
        let Ok(requests) = unframe_requests(&env.payload) else {
            return self.inner.handle_envelope(envelope_bytes);
        };
        let as_v7: Vec<ApiRequest> = requests.into_iter().map(Self::pre_migration_view).collect();
        let reply = self.inner.handle_envelope(&to_bytes(&Envelope {
            machine: env.machine,
            seq: env.seq,
            payload: frame_requests(&as_v7),
        }));
        let Some(reply_env) = from_bytes::<Envelope>(&reply) else {
            return reply;
        };
        let Ok(responses) = unframe_responses(&reply_env.payload) else {
            return reply;
        };
        let restored: Vec<ApiResponse> = responses.into_iter().map(Self::original_tag).collect();
        to_bytes(&Envelope {
            machine: reply_env.machine,
            seq: reply_env.seq,
            payload: frame_responses(&restored),
        })
    }
    // No `outbound_chunk`, no `migration_stats`: a v7 binary has
    // neither — the trait defaults say `None` for both.
}

const NEW_SERVER: u32 = 1;
const OLD_SERVER: u32 = 2;
const PROFILES: [&str; 4] = ["none", "drop8@3", "dup8@5", "chaos@7"];

/// A tenant id the ring places on `want` in the 2-server fleet.
fn tenant_on(want: u32) -> u64 {
    let probe = FleetRouter::new(&[NEW_SERVER, OLD_SERVER]);
    (0..u64::MAX)
        .find(|&t| probe.route(t) == Some(want))
        .expect("some tenant routes everywhere")
}

fn mixed_fleet(profile: &str) -> Fleet {
    let mut fleet = Fleet::new(FaultPlan::parse(profile).expect("known profile"));
    fleet.insert_server(
        NEW_SERVER,
        Box::new(CoresetService::new(ServeConfig::default())),
    );
    fleet.insert_server(OLD_SERVER, Box::new(V7Peer::new()));
    fleet
}

/// What the tenant should serve after `pre` + `post`, computed on an
/// uninvolved single service.
fn expected(
    spec: TenantSpec,
    tenant: u64,
    pre: &[Point],
    post: &[Point],
) -> (f64, Vec<sbc::api::CoresetPoint>) {
    let mut twin = Client::new(InProcess::new(CoresetService::new(ServeConfig::default())));
    twin.open(tenant, spec).expect("open");
    twin.insert(tenant, pre).expect("insert");
    twin.insert(tenant, post).expect("insert");
    twin.query(tenant).expect("query")
}

fn points(spec: TenantSpec, n: usize, seed: u64) -> Vec<Point> {
    let gp = GridParams::from_log_delta(spec.log_delta, spec.dims as usize);
    sbc::geometry::dataset::gaussian_mixture(gp, n, 2, 0.08, seed)
}

/// Direction 1 — old *target*: the new source freezes and ships chunk
/// 0, the v7 target answers `Unsupported`, and the coordinator aborts
/// back to a local, unfrozen, fully-current tenant.
#[test]
fn migrating_onto_an_old_peer_falls_back_losslessly() {
    for profile in PROFILES {
        let spec = TenantSpec::default();
        let tenant = tenant_on(NEW_SERVER);
        let (pre, post) = (points(spec, 40, 3), points(spec, 24, 4));

        let mut fleet = mixed_fleet(profile);
        fleet.open(tenant, spec).expect("open");
        fleet.insert(tenant, &pre).expect("insert");

        let report = fleet
            .migrate(tenant, OLD_SERVER, 512)
            .expect("fallback is Ok, not Err");
        assert!(!report.committed, "a v7 target cannot commit ({profile})");
        assert_eq!(
            fleet.owner(tenant),
            Some(NEW_SERVER),
            "tenant stays local ({profile})"
        );

        // The source unfroze: mutations apply directly again, and the
        // stream picks up exactly where it left off.
        fleet.insert(tenant, &post).expect("post-fallback insert");
        assert_eq!(
            fleet.query(tenant).expect("query"),
            expected(spec, tenant, &pre, &post),
            "data lost migrating onto an old peer under {profile}"
        );

        let stats = fleet.migration_stats();
        assert_eq!(stats.migrations_out, 1, "the source did freeze");
        assert_eq!(stats.aborts, 1, "…and was aborted back");
        assert_eq!(stats.cutovers, 0);
        assert_eq!(stats.migrations_in, 0, "the v7 peer restored nothing");
    }
}

/// Direction 2 — old *source*: `MigrateOut` itself is unsupported, so
/// nothing ever freezes; the coordinator reports an uncommitted
/// fallback and the tenant never misses a beat on the old server.
#[test]
fn migrating_off_an_old_peer_falls_back_losslessly() {
    for profile in PROFILES {
        let spec = TenantSpec::default();
        let tenant = tenant_on(OLD_SERVER);
        let (pre, post) = (points(spec, 40, 5), points(spec, 24, 6));

        let mut fleet = mixed_fleet(profile);
        fleet.open(tenant, spec).expect("open");
        fleet.insert(tenant, &pre).expect("insert");

        let report = fleet
            .migrate(tenant, NEW_SERVER, 512)
            .expect("fallback is Ok, not Err");
        assert!(!report.committed, "a v7 source cannot freeze ({profile})");
        assert_eq!(fleet.owner(tenant), Some(OLD_SERVER));

        fleet.insert(tenant, &post).expect("post-fallback insert");
        assert_eq!(
            fleet.query(tenant).expect("query"),
            expected(spec, tenant, &pre, &post),
            "data lost migrating off an old peer under {profile}"
        );

        // Nothing migration-shaped happened anywhere.
        let stats = fleet.migration_stats();
        assert_eq!(stats.migrations_out, 0);
        assert_eq!(stats.migrations_in, 0);
        assert_eq!(stats.aborts, 0);
        assert_eq!(stats.cutovers, 0);
    }
}

/// Draining a mixed fleet never loses the tenants the old peer can't
/// hand over: they are reported `committed: false` and keep serving.
#[test]
fn draining_a_mixed_fleet_reports_stuck_tenants_instead_of_losing_them() {
    let spec = TenantSpec::default();
    let tenant = tenant_on(OLD_SERVER);
    let pre = points(spec, 32, 9);

    let mut fleet = mixed_fleet("none");
    fleet.open(tenant, spec).expect("open");
    fleet.insert(tenant, &pre).expect("insert");
    let before = fleet.query(tenant).expect("query");

    let reports = fleet.drain(OLD_SERVER, 512).expect("drain");
    assert_eq!(reports.len(), 1);
    assert!(!reports[0].committed, "a v7 source cannot be drained");
    assert_eq!(fleet.owner(tenant), Some(OLD_SERVER), "still serving there");
    assert_eq!(fleet.query(tenant).expect("query"), before);
}
