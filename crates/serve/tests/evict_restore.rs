//! Property: a tenant that is evicted, transparently restored, and
//! continued is **bit-identical** to one that was never interrupted —
//! across serial / batched / sharded / parallel pipelines, and with the
//! traffic routed through the lossy fault-replaying transport (seeded
//! envelope drops and duplicates, retried client-side, deduplicated
//! server-side).

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sbc::api::{tenant_pipeline, CoresetPoint, TenantSpec};
use sbc::{FaultPlan, GridParams, Point, ShardedIngest, StreamCoresetBuilder};
use sbc_serve::{Client, CoresetService, InProcess, Lossy, ServeConfig, Transport};

/// The uninterrupted ground truth: the same spec and ops, applied to a
/// local pipeline with no service, no eviction, no faults.
fn local_reference(spec: &TenantSpec, batches: &[Vec<Point>]) -> (f64, Vec<CoresetPoint>) {
    let (params, sparams) = tenant_pipeline(spec).expect("spec is valid");
    let cs = if spec.shards <= 1 {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut b = StreamCoresetBuilder::new(params, sparams, &mut rng);
        for batch in batches {
            b.insert_batch(batch);
        }
        b.finish_ref().expect("reference")
    } else {
        let mut ingest = ShardedIngest::new(params, sparams, spec.seed).expect("spec is valid");
        for batch in batches {
            ingest.insert_batch(batch);
        }
        ingest.finish_ref().expect("reference")
    };
    let points = cs
        .entries()
        .iter()
        .map(|e| CoresetPoint {
            point: e.point.clone(),
            weight: e.weight,
            level: e.level,
            part: e.part as u64,
        })
        .collect();
    (cs.o, points)
}

/// Feeds the batches through a client, evicting after `evict_after`
/// batches (the next insert restores transparently), and returns the
/// final served coreset.
fn serve<T: Transport>(
    client: &mut Client<T>,
    spec: TenantSpec,
    batches: &[Vec<Point>],
    evict_after: Option<usize>,
) -> (f64, Vec<CoresetPoint>) {
    client.hello().expect("hello");
    client.open(42, spec).expect("open");
    for (i, batch) in batches.iter().enumerate() {
        client.insert(42, batch).expect("insert batch");
        if evict_after == Some(i) {
            client.evict(42).expect("evict mid-stream");
            // While evicted, stats answer cheaply and honestly.
            assert!(client.stats(42).expect("stats").evicted);
        }
    }
    client.query(42).expect("final query")
}

fn spec_strategy() -> impl Strategy<Value = TenantSpec> {
    (0usize..3, any::<bool>(), any::<u64>()).prop_map(|(shard_idx, parallel, seed)| {
        let shards = [1u32, 2, 4][shard_idx];
        TenantSpec {
            shards,
            parallel: parallel && shards > 1,
            seed,
            ..TenantSpec::default()
        }
    })
}

const PROFILES: [&str; 4] = ["none", "drop8@3", "dup8@5", "chaos@7"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn evicted_restored_continued_tenants_are_bit_identical(
        spec in spec_strategy(),
        ops in 24usize..72,
        batch in 4usize..12,
        evict_slot in 0usize..8,
        data_seed in any::<u64>(),
        profile_idx in 0usize..4,
    ) {
        let profile = PROFILES[profile_idx];
        let gp = GridParams::from_log_delta(spec.log_delta, spec.dims as usize);
        let points = sbc::geometry::dataset::gaussian_mixture(gp, ops, 2, 0.08, data_seed);
        let batches: Vec<Vec<Point>> =
            points.chunks(batch).map(<[Point]>::to_vec).collect();
        let evict_after = Some(evict_slot % batches.len());

        let reference = local_reference(&spec, &batches);

        // Uninterrupted, faultless service run.
        let mut plain = Client::new(InProcess::new(CoresetService::new(ServeConfig::default())));
        let uninterrupted = serve(&mut plain, spec, &batches, None);
        prop_assert_eq!(&uninterrupted, &reference,
            "service must serve the local pipeline's exact coreset");

        // Evicted + restored mid-stream, through the lossy transport.
        let plan = FaultPlan::parse(profile).expect("known profile");
        let mut lossy = Client::new(Lossy::new(
            CoresetService::new(ServeConfig::default()),
            plan,
            1,
        ));
        let interrupted = serve(&mut lossy, spec, &batches, evict_after);
        prop_assert_eq!(&interrupted, &reference,
            "evict→restore→continue under {} diverged", profile);

        // The chaos profiles actually exercised the fault machinery.
        let stats = lossy.transport_mut().stats;
        match profile {
            "drop8@3" => prop_assert!(stats.drops > 0 || batches.len() < 4),
            "dup8@5" => prop_assert!(stats.dups > 0 || batches.len() < 4),
            _ => {}
        }
    }
}
