//! The migration oracle: a tenant live-migrated across a 3-server
//! fleet 1–4 times mid-stream — at proptest-chosen cut points, with
//! traffic interleaved into the frozen window so the replay queue
//! genuinely carries ops — is **bit-identical** to a never-migrated
//! twin: same `finish_ref` coreset, same canonical checkpoint bytes.
//! Exercised across serial / sharded / parallel pipelines and the
//! none / drop8 / dup8 / chaos fault profiles.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sbc::api::{tenant_pipeline, CoresetPoint, TenantSpec};
use sbc::{FaultPlan, GridParams, Point, ShardedIngest, StreamCoresetBuilder};
use sbc_obs::fault::splitmix64;
use sbc_serve::{Client, CoresetService, Fleet, InProcess, ServeConfig};

const TENANT: u64 = 42;
const SERVERS: [u32; 3] = [1, 2, 3];

/// The uninterrupted ground truth: the same spec and ops, applied to a
/// local pipeline with no service, no fleet, no faults.
fn local_reference(spec: &TenantSpec, batches: &[Vec<Point>]) -> (f64, Vec<CoresetPoint>) {
    let (params, sparams) = tenant_pipeline(spec).expect("spec is valid");
    let cs = if spec.shards <= 1 {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut b = StreamCoresetBuilder::new(params, sparams, &mut rng);
        for batch in batches {
            b.insert_batch(batch);
        }
        b.finish_ref().expect("reference")
    } else {
        let mut ingest = ShardedIngest::new(params, sparams, spec.seed).expect("spec is valid");
        for batch in batches {
            ingest.insert_batch(batch);
        }
        ingest.finish_ref().expect("reference")
    };
    let points = cs
        .entries()
        .iter()
        .map(|e| CoresetPoint {
            point: e.point.clone(),
            weight: e.weight,
            level: e.level,
            part: e.part as u64,
        })
        .collect();
    (cs.o, points)
}

/// The never-migrated twin: one plain in-process service, same spec
/// and batches. Returns `(query, canonical checkpoint bytes)`.
fn twin_run(spec: TenantSpec, batches: &[Vec<Point>]) -> ((f64, Vec<CoresetPoint>), Vec<u8>) {
    let mut twin = Client::new(InProcess::new(CoresetService::new(ServeConfig::default())));
    twin.hello().expect("hello");
    twin.open(TENANT, spec).expect("open");
    for batch in batches {
        twin.insert(TENANT, batch).expect("insert");
    }
    let query = twin.query(TENANT).expect("query");
    let ckpt = twin.checkpoint(TENANT).expect("checkpoint");
    (query, ckpt)
}

fn spec_strategy() -> impl Strategy<Value = TenantSpec> {
    (0usize..3, any::<bool>(), any::<u64>()).prop_map(|(shard_idx, parallel, seed)| {
        let shards = [1u32, 2, 4][shard_idx];
        TenantSpec {
            shards,
            parallel: parallel && shards > 1,
            seed,
            ..TenantSpec::default()
        }
    })
}

const PROFILES: [&str; 4] = ["none", "drop8@3", "dup8@5", "chaos@7"];

/// The batch indices at which a migration freezes, derived
/// deterministically from the proptest seed: sorted, deduplicated, so
/// 1–4 distinct cut points.
fn cut_points(cut_seed: u64, migrations: usize, batches: usize) -> Vec<usize> {
    let mut cuts: Vec<usize> = (0..migrations)
        .map(|k| (splitmix64(cut_seed ^ k as u64) % batches as u64) as usize)
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole oracle: migrate mid-stream 1–4 times, interleaving
    /// a batch into every frozen window, and compare the final coreset
    /// *and* the canonical checkpoint bytes against the unmigrated
    /// twin, bit for bit.
    #[test]
    fn migrated_tenants_are_bit_identical(
        spec in spec_strategy(),
        ops in 24usize..72,
        batch in 4usize..12,
        migrations in 1usize..=4,
        chunk_bytes in 64u32..2048,
        cut_seed in any::<u64>(),
        data_seed in any::<u64>(),
        profile_idx in 0usize..4,
    ) {
        let profile = PROFILES[profile_idx];
        let gp = GridParams::from_log_delta(spec.log_delta, spec.dims as usize);
        let points = sbc::geometry::dataset::gaussian_mixture(gp, ops, 2, 0.08, data_seed);
        let batches: Vec<Vec<Point>> =
            points.chunks(batch).map(<[Point]>::to_vec).collect();
        let cuts = cut_points(cut_seed, migrations, batches.len());

        let reference = local_reference(&spec, &batches);
        let (twin_query, twin_ckpt) = twin_run(spec, &batches);
        prop_assert_eq!(&twin_query, &reference,
            "unmigrated service must serve the local pipeline's exact coreset");

        let plan = FaultPlan::parse(profile).expect("known profile");
        let mut fleet = Fleet::new(plan);
        for id in SERVERS {
            fleet.insert_server(id, Box::new(CoresetService::new(ServeConfig::default())));
        }
        fleet.open(TENANT, spec).expect("open");

        let mut committed = 0u64;
        let mut frozen_points = 0u64;
        for (i, b) in batches.iter().enumerate() {
            let migrate_here = cuts.contains(&i);
            if migrate_here {
                // Freeze on the current owner, ship the snapshot, but
                // do NOT finish yet: the next insert lands inside the
                // frozen window and rides the replay queue.
                let from = fleet.owner(TENANT).expect("owner");
                let to = SERVERS[(SERVERS.iter().position(|&s| s == from).unwrap() + 1)
                    % SERVERS.len()];
                prop_assert!(
                    fleet.migrate_begin(TENANT, to, chunk_bytes).expect("begin"),
                    "no old peers and no budgets: the snapshot must land"
                );
            }
            fleet.insert(TENANT, b).expect("insert");
            if migrate_here {
                frozen_points += b.len() as u64;
                let report = fleet.migrate_finish(TENANT).expect("finish");
                prop_assert!(report.committed);
                prop_assert!(report.chunks >= 1);
                prop_assert!(report.replayed_ops >= b.len() as u64,
                    "the interleaved batch must ride the replay queue");
                committed += 1;
            }
        }

        let fleet_query = fleet.query(TENANT).expect("query");
        prop_assert_eq!(&fleet_query, &reference,
            "{}x-migrated tenant diverged from the local reference under {}",
            cuts.len(), profile);
        let fleet_ckpt = fleet.checkpoint(TENANT).expect("checkpoint");
        prop_assert_eq!(&fleet_ckpt, &twin_ckpt,
            "canonical checkpoint bytes diverged after migration under {}", profile);

        let stats = fleet.migration_stats();
        prop_assert_eq!(stats.cutovers, committed);
        prop_assert_eq!(stats.migrations_out, committed);
        prop_assert_eq!(stats.migrations_in, committed);
        prop_assert_eq!(stats.aborts, 0);
        prop_assert!(stats.replayed_ops >= frozen_points);
        prop_assert!(stats.replay_queue_peak >= 1);

        // The chaos profiles actually exercised the fault machinery.
        let delivery = fleet.stats;
        match profile {
            "drop8@3" => prop_assert!(delivery.drops > 0),
            "dup8@5" => prop_assert!(delivery.dups > 0),
            _ => {}
        }
    }

    /// Abort is lossless in every fault state: freeze, interleave
    /// traffic, abandon — the tenant keeps serving on the source with
    /// nothing missing.
    #[test]
    fn aborted_migrations_lose_nothing(
        spec in spec_strategy(),
        ops in 24usize..48,
        data_seed in any::<u64>(),
        profile_idx in 0usize..4,
    ) {
        let profile = PROFILES[profile_idx];
        let gp = GridParams::from_log_delta(spec.log_delta, spec.dims as usize);
        let points = sbc::geometry::dataset::gaussian_mixture(gp, ops, 2, 0.08, data_seed);
        let batches: Vec<Vec<Point>> = points.chunks(8).map(<[Point]>::to_vec).collect();
        let reference = local_reference(&spec, &batches);

        let plan = FaultPlan::parse(profile).expect("known profile");
        let mut fleet = Fleet::new(plan);
        for id in SERVERS {
            fleet.insert_server(id, Box::new(CoresetService::new(ServeConfig::default())));
        }
        fleet.open(TENANT, spec).expect("open");
        let from = fleet.owner(TENANT).expect("owner");
        let to = SERVERS[(SERVERS.iter().position(|&s| s == from).unwrap() + 1) % SERVERS.len()];

        for (i, b) in batches.iter().enumerate() {
            if i == 1 {
                prop_assert!(fleet.migrate_begin(TENANT, to, 256).expect("begin"));
            }
            fleet.insert(TENANT, b).expect("insert");
        }
        // Abandon: ops were double-applied the whole time, so the
        // source is already current. Discard the receiver's half too.
        fleet.abort(TENANT).expect("abort");
        let aborted_query = fleet.query(TENANT).expect("query");
        prop_assert_eq!(&aborted_query, &reference,
            "abort lost ops under {}", profile);
        prop_assert_eq!(fleet.owner(TENANT), Some(from), "tenant stayed local");
        prop_assert_eq!(fleet.migration_stats().cutovers, 0);
    }
}
