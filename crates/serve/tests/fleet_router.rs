//! Properties of the consistent-hash [`FleetRouter`] and of migration
//! storms against receiver admission budgets:
//!
//! * membership changes move a near-minimal set of tenants — adding a
//!   server only *gains* tenants, removing one only moves *its*
//!   tenants;
//! * routing is a pure function of the membership set — any process
//!   that built the ring in any order computes identical placements;
//! * a migration storm aimed at a budgeted receiver falls back
//!   losslessly once admission refuses (the PR 8 restore-budget
//!   regression, now on the migration path).

use std::collections::BTreeSet;

use proptest::prelude::*;

use sbc::api::TenantSpec;
use sbc::{FaultPlan, GridParams};
use sbc_serve::{
    CoresetService, Fleet, FleetRouter, OverloadPolicy, ServeConfig, VNODES_PER_SERVER,
};

fn servers_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..10_000, 2..8).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        if ids.len() < 2 {
            ids.push(ids[0] + 1);
        }
        ids
    })
}

const TENANTS: u64 = 256;

fn placements(router: &FleetRouter) -> Vec<u32> {
    (0..TENANTS)
        .map(|t| router.route(t).expect("non-empty ring"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding a server moves tenants *only onto the new server*, and
    /// the moved set stays near the 1/(n+1) minimum — `VNODES_PER_SERVER`
    /// arcs keep the variance small enough for a 3x ceiling.
    #[test]
    fn adding_a_server_gains_a_minimal_set(servers in servers_strategy(), added in 10_000u32..20_000) {
        let mut router = FleetRouter::new(&servers);
        let before = placements(&router);
        router.add_server(added);
        let after = placements(&router);

        let mut moved = 0u64;
        for (b, a) in before.iter().zip(&after) {
            if a != b {
                prop_assert_eq!(*a, added, "movement must target the added server only");
                moved += 1;
            }
        }
        let n_after = servers.len() as u64 + 1;
        let ceiling = 3 * TENANTS / n_after + 8;
        prop_assert!(
            moved <= ceiling,
            "moved {moved} of {TENANTS} tenants to 1 of {n_after} servers (ceiling {ceiling})"
        );
    }

    /// Removing a server moves *only* the tenants it owned; everyone
    /// else keeps their placement bit-for-bit.
    #[test]
    fn removing_a_server_strands_no_one_else(servers in servers_strategy(), victim_idx in any::<usize>()) {
        let router_full = FleetRouter::new(&servers);
        let before = placements(&router_full);
        let victim = servers[victim_idx % servers.len()];

        let mut router = router_full.clone();
        router.remove_server(victim);
        let after = placements(&router);

        for (t, (b, a)) in before.iter().zip(&after).enumerate() {
            prop_assert_ne!(*a, victim, "tenant {} routed to a removed server", t);
            if *b != victim {
                prop_assert_eq!(a, b, "tenant {} moved without cause", t);
            }
        }
    }

    /// The ring is a pure function of the membership *set*: rotations,
    /// reversals, and add/remove churn that end at the same set route
    /// every tenant identically — the cross-process determinism the
    /// fleet's redirect protocol leans on.
    #[test]
    fn routing_is_deterministic_across_processes(servers in servers_strategy(), rot in any::<usize>()) {
        let canonical = placements(&FleetRouter::new(&servers));

        let mut rotated = servers.clone();
        rotated.rotate_left(rot % servers.len());
        prop_assert_eq!(&placements(&FleetRouter::new(&rotated)), &canonical);

        let mut reversed = servers.clone();
        reversed.reverse();
        prop_assert_eq!(&placements(&FleetRouter::new(&reversed)), &canonical);

        // A router that took a detour: extra members added, then
        // removed again. Same final set, same ring.
        let mut churned = FleetRouter::new(&servers);
        for ghost in 90_000u32..90_004 {
            churned.add_server(ghost);
        }
        for ghost in 90_000u32..90_004 {
            churned.remove_server(ghost);
        }
        prop_assert_eq!(&placements(&churned), &canonical);
    }

    /// Every server's vnode count is exact, so shares can't silently
    /// drift as membership churns.
    #[test]
    fn every_member_keeps_its_vnode_arcs(servers in servers_strategy()) {
        let router = FleetRouter::new(&servers);
        let members: BTreeSet<u32> = router.servers().iter().copied().collect();
        prop_assert_eq!(members.len(), servers.len());
        // Route enough tenants that each member almost surely owns
        // at least one — a smoke check that no server's arcs vanished.
        let owners: BTreeSet<u32> = (0..4096u64)
            .map(|t| router.route(t).expect("non-empty"))
            .collect();
        prop_assert_eq!(owners.len(), servers.len(),
            "some server owns no tenants out of 4096 — arcs lost? {} vnodes/server",
            VNODES_PER_SERVER);
    }
}

/// A migration storm into a budgeted `Reject` receiver: admissions
/// succeed until the receiver's `measured_bytes` budget is exhausted,
/// then fall back with `committed: false` — and every tenant, moved or
/// not, keeps serving its exact pre-storm coreset.
#[test]
fn migration_storm_respects_receiver_admission_budget() {
    const SERVERS: [u32; 3] = [1, 2, 3];
    const RECEIVER: u32 = 2;
    const N_TENANTS: u64 = 8;

    let spec = TenantSpec::default();
    let gp = GridParams::from_log_delta(spec.log_delta, spec.dims as usize);

    // Pass 1 (unbudgeted): learn how many bytes one tenant measures.
    let per_tenant = {
        let mut fleet = Fleet::new(FaultPlan::parse("none").expect("profile"));
        for id in SERVERS {
            fleet.insert_server(id, Box::new(CoresetService::new(ServeConfig::default())));
        }
        fleet.open(0, spec).expect("open");
        let pts = sbc::geometry::dataset::gaussian_mixture(gp, 48, 2, 0.08, 7);
        fleet.insert(0, &pts).expect("insert");
        let owner = fleet.owner(0).expect("owner");
        fleet.server_stats(owner).expect("stats").measured_bytes
    };
    assert!(per_tenant > 0);

    // Pass 2: the receiver gets a budget with room for its own tenants
    // plus ~2 incoming, and refuses (never sheds) past it.
    let mut fleet = Fleet::new(FaultPlan::parse("chaos@11").expect("profile"));
    let probe = FleetRouter::new(&SERVERS);
    let resident = (0..N_TENANTS)
        .filter(|&t| probe.route(t) == Some(RECEIVER))
        .count() as u64;
    let budget = ((resident + 2) * per_tenant + per_tenant / 2) as usize;
    for id in SERVERS {
        let cfg = if id == RECEIVER {
            ServeConfig {
                budget_bytes: budget,
                policy: OverloadPolicy::Reject,
                ..ServeConfig::default()
            }
        } else {
            ServeConfig::default()
        };
        fleet.insert_server(id, Box::new(CoresetService::new(cfg)));
    }

    let mut references = Vec::new();
    for t in 0..N_TENANTS {
        fleet.open(t, spec).expect("open");
        let pts = sbc::geometry::dataset::gaussian_mixture(gp, 48, 2, 0.08, 100 + t);
        fleet.insert(t, &pts).expect("insert");
        references.push(fleet.query(t).expect("query"));
    }

    // The storm: shove every tenant at the budgeted receiver.
    let mut committed = 0u64;
    let mut fallbacks = 0u64;
    for t in 0..N_TENANTS {
        let report = fleet.migrate(t, RECEIVER, 512).expect("storm migrate");
        if report.committed {
            committed += 1;
            assert_eq!(fleet.owner(t), Some(RECEIVER));
        } else {
            fallbacks += 1;
        }
    }
    assert!(
        committed >= 1,
        "the budget left room for at least one admission"
    );
    assert!(
        fallbacks >= 1,
        "the budget must refuse part of the storm (committed {committed})"
    );

    // Lossless either way: every tenant still serves its exact
    // pre-storm coreset, wherever it ended up.
    for t in 0..N_TENANTS {
        assert_eq!(
            fleet.query(t).expect("post-storm query"),
            references[t as usize],
            "tenant {t} diverged during the storm"
        );
    }

    // And the receiver never blew its budget.
    let stats = fleet.server_stats(RECEIVER).expect("receiver stats");
    assert!(
        stats.measured_bytes <= stats.budget_bytes,
        "receiver measured {} > budget {}",
        stats.measured_bytes,
        stats.budget_bytes
    );
    assert_eq!(stats.budget_bytes, budget as u64);
}
