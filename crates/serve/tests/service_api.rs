//! Service-level integration: every request kind through the typed
//! client and the raw frame entry points, admission control under both
//! policies, disk spill, envelope dedup, and protocol edge cases.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sbc::api::{
    frame_requests, negotiate, tenant_pipeline, unframe_responses, ApiError, ApiRequest,
    ApiResponse, TenantSpec, FRAME_MAGIC, PROTOCOL_VERSION,
};
use sbc::distributed::wire::Envelope;
use sbc::streaming::codec::{from_bytes, to_bytes};
use sbc::{GridParams, Point, SbcError, StreamCoresetBuilder};
use sbc_serve::{Client, CoresetService, InProcess, OverloadPolicy, ServeConfig};

fn points(spec: &TenantSpec, n: usize, seed: u64) -> Vec<Point> {
    let gp = GridParams::from_log_delta(spec.log_delta, spec.dims as usize);
    sbc::geometry::dataset::gaussian_mixture(gp, n, 2, 0.08, seed)
}

fn client(config: ServeConfig) -> Client<InProcess> {
    let mut c = Client::new(InProcess::new(CoresetService::new(config)));
    assert_eq!(c.hello().expect("hello"), PROTOCOL_VERSION);
    c
}

fn code(e: &SbcError) -> u16 {
    e.code()
}

#[test]
fn full_tenant_lifecycle_over_the_wire() {
    let mut c = client(ServeConfig::default());
    let spec = TenantSpec {
        seed: 11,
        ..TenantSpec::default()
    };
    let pts = points(&spec, 48, 5);

    assert!(
        !c.open(7, spec).expect("open"),
        "fresh open is not a restore"
    );
    assert_eq!(c.insert(7, &pts).expect("insert"), 48);
    assert_eq!(c.delete(7, &pts[..8]).expect("delete"), 40);

    let (o, served) = c.query(7).expect("mid-stream query");
    assert!(o >= 1.0);
    assert!(!served.is_empty());

    let stats = c.stats(7).expect("stats");
    assert_eq!(stats.net_count, 40);
    assert_eq!(stats.ops_seen, 56);
    assert!(!stats.evicted);
    assert!(stats.measured_bytes > 0);

    // The wire checkpoint is the (spec, per-shard snapshots) container,
    // and the snapshot equals an uninterrupted local builder's.
    let container = c.checkpoint(7).expect("checkpoint");
    let (stored_spec, blobs): (TenantSpec, Vec<Vec<u8>>) =
        from_bytes(&container).expect("decodable container");
    assert_eq!(stored_spec, spec);
    let (params, sparams) = tenant_pipeline(&spec).unwrap();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut local = StreamCoresetBuilder::new(params, sparams, &mut rng);
    local.insert_batch(&pts);
    for p in &pts[..8] {
        local.delete(p);
    }
    assert_eq!(blobs, vec![local.checkpoint().unwrap().to_bytes()]);

    // Evict, observe cheap stats, then transparently restore via insert.
    let bytes = c.evict(7).expect("evict");
    assert!(bytes > 0);
    let stats = c.stats(7).expect("stats while evicted");
    assert!(stats.evicted);
    assert_eq!(stats.measured_bytes, 0, "evicted stats must not restore");
    assert_eq!(c.insert(7, &pts[..4]).expect("restore-on-insert"), 44);

    c.close(7).expect("close");
    let err = c.stats(7).expect_err("closed tenant is unknown");
    assert_eq!(code(&err), 210);
}

#[test]
fn open_is_idempotent_and_spec_changes_are_refused() {
    let mut c = client(ServeConfig::default());
    let spec = TenantSpec::default();
    c.open(1, spec).expect("open");
    assert!(!c.open(1, spec).expect("re-open is idempotent"));
    let err = c
        .open(1, TenantSpec { k: 3, ..spec })
        .expect_err("spec change on a live tenant");
    assert_eq!(code(&err), 211);
}

#[test]
fn wrong_dimension_points_are_refused_with_a_coded_error() {
    let mut c = client(ServeConfig::default());
    let spec = TenantSpec::default(); // dims = 2
    c.open(1, spec).expect("open");
    let bad = vec![Point::new(vec![1, 1, 1])];
    let err = c.insert(1, &bad).expect_err("3-d point into a 2-d tenant");
    assert_eq!(code(&err), 213);
    // Nothing was applied.
    assert_eq!(c.stats(1).expect("stats").ops_seen, 0);
}

#[test]
fn reject_policy_refuses_and_applies_nothing() {
    let mut c = client(ServeConfig {
        budget_bytes: 1, // any live tenant is over budget
        policy: OverloadPolicy::Reject,
        ..ServeConfig::default()
    });
    let spec = TenantSpec::default();
    // The first open is admitted (nothing measured yet), the next is not.
    c.open(1, spec).expect("first open fits an empty service");
    let err = c
        .open(2, TenantSpec { seed: 2, ..spec })
        .expect_err("second open must be refused");
    assert!(matches!(err, SbcError::Api(ApiError::Overloaded { .. })));
    assert_eq!(code(&err), 220);
    // Mutations on the surviving tenant are refused too.
    let err = c.insert(1, &points(&spec, 4, 1)).expect_err("over budget");
    assert_eq!(code(&err), 220);
    let stats = c.server_stats().expect("server stats");
    assert_eq!(stats.tenants_live, 1);
    assert_eq!(stats.overloaded, 2);
    assert_eq!(stats.evictions, 0);
}

#[test]
fn shed_policy_evicts_the_fattest_other_tenant() {
    let spec = TenantSpec::default();
    // Budget fits one tenant but not two: measure one builder first.
    let (params, sparams) = tenant_pipeline(&spec).unwrap();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let one = StreamCoresetBuilder::new(params, sparams, &mut rng)
        .space_report()
        .measured_bytes;

    let mut c = client(ServeConfig {
        budget_bytes: one + one / 2,
        policy: OverloadPolicy::Shed,
        ..ServeConfig::default()
    });
    c.open(1, spec).expect("open 1");
    c.insert(1, &points(&spec, 32, 1)).expect("feed 1");
    // The second open is admitted (the decision precedes the new
    // tenant's footprint), leaving the service over budget…
    c.open(2, TenantSpec { seed: 2, ..spec }).expect("open 2");
    // …so tenant 2's first insert trips admission control, which sheds
    // the fattest *other* tenant — tenant 1 (fed, so strictly fatter) —
    // rather than refusing the requester.
    c.insert(2, &points(&spec, 4, 2))
        .expect("insert sheds tenant 1");
    assert!(c.stats(1).expect("stats").evicted, "tenant 1 was shed");
    assert!(!c.stats(2).expect("stats").evicted);
    let stats = c.server_stats().expect("server stats");
    assert_eq!(stats.evictions, 1);
    // Tenant 1 still answers — its query runs restore admission (the
    // known incoming footprint), sheds tenant 2 to make room, and
    // restores transparently.
    let (_o, served) = c.query(1).expect("query restores");
    assert!(!served.is_empty());
    let stats = c.server_stats().expect("server stats");
    assert_eq!(stats.restores, 1);
    assert_eq!(stats.evictions, 2, "the restore shed tenant 2");
}

#[test]
fn hostile_specs_are_refused_coded_and_do_not_kill_the_server() {
    // Wire-supplied spec values must never reach the asserting grid
    // constructor: each bad Open answers a coded InvalidSpec (214) and
    // the service keeps serving afterwards.
    let mut c = client(ServeConfig::default());
    let bad_specs = [
        TenantSpec {
            log_delta: 41,
            ..TenantSpec::default()
        },
        TenantSpec {
            log_delta: u32::MAX,
            ..TenantSpec::default()
        },
        TenantSpec {
            dims: 0,
            ..TenantSpec::default()
        },
        TenantSpec {
            dims: u32::MAX,
            ..TenantSpec::default()
        },
        TenantSpec {
            shards: u32::MAX,
            ..TenantSpec::default()
        },
    ];
    for (i, spec) in bad_specs.into_iter().enumerate() {
        let err = c.open(i as u64, spec).expect_err("hostile spec");
        assert_eq!(code(&err), 214, "{spec:?}");
        let err = c.stats(i as u64).expect_err("no tenant was created");
        assert_eq!(code(&err), 210);
    }
    // k = 0 fails in the params builder — coded too, different range.
    let err = c
        .open(
            9,
            TenantSpec {
                k: 0,
                ..TenantSpec::default()
            },
        )
        .expect_err("k = 0");
    assert_eq!(code(&err), 101);
    // The service survived all of it.
    c.open(10, TenantSpec::default()).expect("still serving");
    assert_eq!(c.server_stats().expect("server stats").tenants_live, 1);
}

#[test]
fn restore_on_demand_respects_the_budget() {
    // Under Reject, a request that would restore an evicted tenant past
    // the budget is refused *before* the restore — the tenant stays on
    // disk and total measured bytes stay put, instead of every evicted
    // tenant's next request growing the service arbitrarily past budget.
    let spec = TenantSpec::default();
    let (params, sparams) = tenant_pipeline(&spec).unwrap();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let one = StreamCoresetBuilder::new(params, sparams, &mut rng)
        .space_report()
        .measured_bytes;

    let mut c = client(ServeConfig {
        budget_bytes: one + one / 2,
        policy: OverloadPolicy::Reject,
        ..ServeConfig::default()
    });
    c.open(1, spec).expect("open 1");
    c.insert(1, &points(&spec, 16, 1)).expect("feed 1");
    c.evict(1).expect("evict 1");
    c.open(2, TenantSpec { seed: 2, ..spec }).expect("open 2");
    let occupied = c.server_stats().expect("server stats").measured_bytes;

    // Tenant 2 occupies ~`one` bytes; restoring tenant 1 (> `one`) would
    // run past the 1.5×`one` budget. Every restore path must refuse.
    let err = c.insert(1, &points(&spec, 4, 2)).expect_err("insert");
    assert_eq!(code(&err), 220);
    let err = c.query(1).expect_err("query must not restore past budget");
    assert_eq!(code(&err), 220);
    let err = c.checkpoint(1).expect_err("checkpoint must not restore");
    assert_eq!(code(&err), 220);
    let err = c.open(1, spec).expect_err("re-open must not restore");
    assert_eq!(code(&err), 220);

    let stats = c.server_stats().expect("server stats");
    assert_eq!(stats.restores, 0, "nothing was restored");
    assert_eq!(
        stats.measured_bytes, occupied,
        "refused restores must not grow the footprint"
    );
    assert!(
        c.stats(1).expect("stats").evicted,
        "tenant 1 stayed on disk"
    );

    // Freeing the budget makes the same restore admissible again.
    c.close(2).expect("close 2");
    let (_o, served) = c.query(1).expect("query restores once there is room");
    assert!(!served.is_empty());
    assert_eq!(c.server_stats().expect("server stats").restores, 1);
}

#[test]
fn max_tenants_cap_refuses_new_opens() {
    let mut c = client(ServeConfig {
        max_tenants: 1,
        ..ServeConfig::default()
    });
    let spec = TenantSpec::default();
    c.open(1, spec).expect("open 1");
    let err = c
        .open(2, TenantSpec { seed: 2, ..spec })
        .expect_err("cap reached");
    assert_eq!(code(&err), 220);
    // But the capped tenant keeps working, and re-open stays idempotent.
    assert!(!c.open(1, spec).expect("idempotent"));
}

#[test]
fn disk_spill_round_trips_and_close_cleans_up() {
    let dir = std::env::temp_dir().join(format!("sbc-serve-spill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut c = client(ServeConfig {
        spill_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let spec = TenantSpec {
        seed: 3,
        ..TenantSpec::default()
    };
    c.open(9, spec).expect("open");
    c.insert(9, &points(&spec, 32, 7)).expect("insert");
    let before = c.query(9).expect("query before evict");

    c.evict(9).expect("evict to disk");
    let spill = dir.join("tenant-9.sbct");
    assert!(spill.exists(), "eviction wrote {}", spill.display());
    // Idempotent re-evict (a retried frame) leaves the spill alone.
    c.evict(9).expect("re-evict is idempotent");
    assert!(spill.exists());

    let after = c.query(9).expect("query restores from disk");
    assert_eq!(before, after, "restore is bit-identical");
    assert!(!spill.exists(), "restore consumed the spill file");

    c.evict(9).expect("evict again");
    c.close(9).expect("close an evicted tenant");
    assert!(!spill.exists(), "close removed the spill file");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batched_frames_answer_record_for_record() {
    let mut c = client(ServeConfig::default());
    let spec = TenantSpec::default();
    let pts = points(&spec, 8, 1);
    let resps = c
        .call_batch(&[
            ApiRequest::Open { tenant: 1, spec },
            ApiRequest::Insert {
                tenant: 1,
                points: pts.clone(),
            },
            ApiRequest::Query { tenant: 1 },
            ApiRequest::Stats { tenant: 2 }, // unknown — per-record error
            ApiRequest::Unknown { tag: 4096 },
        ])
        .expect("batch");
    assert_eq!(resps.len(), 5);
    assert!(matches!(
        resps[0],
        ApiResponse::Opened {
            tenant: 1,
            restored: false
        }
    ));
    assert!(matches!(resps[1], ApiResponse::Applied { applied: 8, .. }));
    assert!(matches!(resps[2], ApiResponse::CoresetReply { .. }));
    assert!(matches!(resps[3], ApiResponse::Error { code: 210, .. }));
    assert!(matches!(resps[4], ApiResponse::Unsupported { tag: 4096 }));
}

#[test]
fn version_negotiation_agrees_or_fails_coded() {
    assert_eq!(negotiate(1, 1), Ok(1));
    assert_eq!(negotiate(1, 99), Ok(PROTOCOL_VERSION), "caps at ours");
    let err =
        negotiate(PROTOCOL_VERSION + 1, PROTOCOL_VERSION + 5).expect_err("future-only client");
    assert_eq!(err.code(), 203);

    // Through the service: a future-only Hello answers a coded error.
    let mut service = CoresetService::new(ServeConfig::default());
    let resp = service.handle(&ApiRequest::Hello {
        min_version: PROTOCOL_VERSION + 1,
        max_version: PROTOCOL_VERSION + 1,
    });
    assert!(matches!(resp, ApiResponse::Error { code: 203, .. }));
}

#[test]
fn garbage_frames_answer_a_single_coded_error_record() {
    let mut service = CoresetService::new(ServeConfig::default());
    let reply = service.handle_frame(b"not a frame at all");
    let resps = unframe_responses(&reply).expect("reply frame is well-formed");
    assert!(matches!(
        resps.as_slice(),
        [ApiResponse::Error { code: 200, .. }]
    ));

    // Truncated payload: valid magic, length runs past the buffer.
    let mut frame = FRAME_MAGIC.to_vec();
    frame.extend_from_slice(&100u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]);
    let reply = service.handle_frame(&frame);
    let resps = unframe_responses(&reply).expect("reply frame is well-formed");
    assert!(matches!(
        resps.as_slice(),
        [ApiResponse::Error { code: 201, .. }]
    ));
}

#[test]
fn envelope_redelivery_is_answered_from_cache_without_reapplying() {
    let mut service = CoresetService::new(ServeConfig::default());
    let spec = TenantSpec::default();
    let pts = points(&spec, 4, 1);
    let open = to_bytes(&Envelope {
        machine: 3,
        seq: 1,
        payload: frame_requests(&[ApiRequest::Open { tenant: 1, spec }]),
    });
    let insert = to_bytes(&Envelope {
        machine: 3,
        seq: 2,
        payload: frame_requests(&[ApiRequest::Insert {
            tenant: 1,
            points: pts,
        }]),
    });
    service.handle_envelope(&open);
    let first = service.handle_envelope(&insert);
    // The transport redelivers seq 2 (a duplicate or a retry): the reply
    // must come from cache and the 4 points must not be applied twice.
    let second = service.handle_envelope(&insert);
    assert_eq!(first, second);
    let stats = match service.handle(&ApiRequest::Stats { tenant: 1 }) {
        ApiResponse::StatsReply { stats, .. } => stats,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(stats.net_count, 4, "duplicate delivery must not re-apply");
    assert_eq!(stats.ops_seen, 4);

    // An undecodable envelope still answers a coded error envelope.
    let reply = service.handle_envelope(b"\x01\x02\x03");
    let env: Envelope = from_bytes(&reply).expect("error reply is an envelope");
    let resps = unframe_responses(&env.payload).expect("well-formed frame");
    assert!(matches!(
        resps.as_slice(),
        [ApiResponse::Error { code: 201, .. }]
    ));
}

#[test]
fn dedup_window_is_bounded_across_machine_id_cycling() {
    // A peer cycling fresh machine ids must not grow the dedup map
    // without bound: past the window's capacity the oldest machines are
    // displaced (losing only their idempotency window — the same
    // contract as a brand-new peer).
    let mut service = CoresetService::new(ServeConfig::default());
    let spec = TenantSpec::default();
    service.handle(&ApiRequest::Open { tenant: 1, spec });
    let insert = to_bytes(&Envelope {
        machine: 1,
        seq: 1,
        payload: frame_requests(&[ApiRequest::Insert {
            tenant: 1,
            points: points(&spec, 4, 1),
        }]),
    });
    service.handle_envelope(&insert);
    // Within the window: redelivery is answered from cache.
    service.handle_envelope(&insert);
    let net = |service: &mut CoresetService| match service.handle(&ApiRequest::Stats { tenant: 1 })
    {
        ApiResponse::StatsReply { stats, .. } => stats.net_count,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(net(&mut service), 4, "in-window redelivery deduplicated");

    // Cycle enough distinct machine ids to displace machine 1 (the
    // window holds 1024 machines).
    for m in 2..=1025u32 {
        service.handle_envelope(&to_bytes(&Envelope {
            machine: m,
            seq: 1,
            payload: frame_requests(&[ApiRequest::ServerStats]),
        }));
    }
    // Machine 1's window is gone: the redelivery re-applies, exactly as
    // a first delivery from an unknown peer would.
    service.handle_envelope(&insert);
    assert_eq!(net(&mut service), 8, "displaced window re-applies");
}

#[test]
fn shutdown_flows_through_the_protocol() {
    let mut c = client(ServeConfig::default());
    c.shutdown().expect("shutdown ack");
    assert!(c.transport_mut().service_mut().is_shutting_down());
}
