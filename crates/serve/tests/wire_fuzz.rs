//! Hostile-wire robustness for the migration record tags (the serve
//! half of `wire_fuzz` — the codec half lives in
//! `crates/distributed/tests/wire_fuzz.rs`): truncated chunks,
//! out-of-order and replayed `ChunkedCheckpoint`s, `CutOver` for
//! unknown tenants, and oversized chunk headers must all answer coded
//! errors in the 24x range — never panic, and never buffer past the
//! configured migration byte cap no matter what the headers claim.

use proptest::prelude::*;

use sbc::api::{
    frame_requests, unframe_responses, ApiRequest, ApiResponse, TenantSpec,
    MAX_MIGRATION_CHUNK_BYTES,
};
use sbc::streaming::codec::to_bytes;
use sbc::Point;
use sbc_serve::{CoresetService, ServeConfig};

/// A service with a deliberately tiny migration byte cap, so hostile
/// `total_bytes` claims are cheap to refuse and easy to assert on.
const MIGRATION_CAP: usize = 64 * 1024;

fn service() -> CoresetService {
    CoresetService::new(ServeConfig {
        max_migration_bytes: MIGRATION_CAP,
        ..ServeConfig::default()
    })
}

fn one(svc: &mut CoresetService, req: ApiRequest) -> ApiResponse {
    let reply = svc.handle_frame(&frame_requests(std::slice::from_ref(&req)));
    let mut responses = unframe_responses(&reply).expect("service frames are well-formed");
    assert_eq!(responses.len(), 1);
    responses.remove(0)
}

fn error_code(resp: &ApiResponse) -> Option<u16> {
    match resp {
        ApiResponse::Error { code, .. } => Some(*code),
        _ => None,
    }
}

fn chunk(
    tenant: u64,
    spec: TenantSpec,
    chunk: u32,
    total_chunks: u32,
    total_bytes: u64,
    payload: Vec<u8>,
) -> ApiRequest {
    ApiRequest::ChunkedCheckpoint {
        tenant,
        spec,
        chunk,
        total_chunks,
        total_bytes,
        measured_bytes: 0,
        payload,
    }
}

#[test]
fn migration_lifecycle_requests_for_unknown_tenants_are_coded() {
    let mut svc = service();
    for req in [
        ApiRequest::CutOver { tenant: 9, peer: 2 },
        ApiRequest::DrainReplay {
            tenant: 9,
            max_ops: 64,
        },
        ApiRequest::MigrateAbort { tenant: 9 },
        ApiRequest::MigrateOut {
            tenant: 9,
            chunk_bytes: 256,
        },
    ] {
        assert_eq!(error_code(&one(&mut svc, req)), Some(210), "UnknownTenant");
    }
}

#[test]
fn migration_lifecycle_on_a_tenant_that_is_not_migrating_is_240() {
    let mut svc = service();
    let spec = TenantSpec::default();
    assert!(matches!(
        one(&mut svc, ApiRequest::Open { tenant: 7, spec }),
        ApiResponse::Opened { .. }
    ));
    for req in [
        ApiRequest::CutOver { tenant: 7, peer: 2 },
        ApiRequest::DrainReplay {
            tenant: 7,
            max_ops: 64,
        },
        ApiRequest::MigrateAbort { tenant: 7 },
    ] {
        assert_eq!(error_code(&one(&mut svc, req)), Some(240), "NotMigrating");
    }
}

#[test]
fn out_of_order_and_replayed_chunks_are_coded_not_corrupting() {
    let mut svc = service();
    let spec = TenantSpec::default();

    // A mid-transfer chunk for a tenant nobody started: 242.
    let resp = one(&mut svc, chunk(5, spec, 3, 8, 1024, vec![0u8; 64]));
    assert_eq!(error_code(&resp), Some(242), "chunk out of order");

    // Start a (bogus-payload) transfer properly with chunk 0…
    let resp = one(&mut svc, chunk(5, spec, 0, 3, 192, vec![1u8; 64]));
    assert!(matches!(resp, ApiResponse::ChunkAck { chunk: 0, .. }));

    // …a replayed chunk 0 re-acks idempotently…
    let resp = one(&mut svc, chunk(5, spec, 0, 3, 192, vec![1u8; 64]));
    assert!(
        matches!(
            resp,
            ApiResponse::ChunkAck {
                chunk: 0,
                received_bytes: 64,
                ..
            }
        ),
        "replayed chunk must re-ack, got {resp:?}"
    );

    // …skipping ahead is refused…
    let resp = one(&mut svc, chunk(5, spec, 2, 3, 192, vec![1u8; 64]));
    assert_eq!(error_code(&resp), Some(242));

    // …and a drifting header (different total) is refused too.
    let resp = one(&mut svc, chunk(5, spec, 1, 4, 192, vec![1u8; 64]));
    assert_eq!(error_code(&resp), Some(242));
}

#[test]
fn oversized_chunk_headers_are_refused_before_buffering() {
    let mut svc = service();
    let spec = TenantSpec::default();

    // A total_bytes claim past the configured cap: 243, no slot made.
    let resp = one(
        &mut svc,
        chunk(6, spec, 0, 1, (MIGRATION_CAP as u64) + 1, vec![0u8; 8]),
    );
    assert_eq!(error_code(&resp), Some(243), "ChunkTooLarge");

    // A payload past the per-chunk protocol bound: 243.
    let fat = vec![0u8; MAX_MIGRATION_CHUNK_BYTES as usize + 1];
    let resp = one(&mut svc, chunk(6, spec, 0, 64, 32 * 1024, fat));
    assert_eq!(error_code(&resp), Some(243));

    // A payload overrunning its own total_bytes claim: 243, and the
    // transfer slot survives for the coordinator to abort.
    let resp = one(&mut svc, chunk(6, spec, 0, 2, 96, vec![0u8; 64]));
    assert!(matches!(resp, ApiResponse::ChunkAck { .. }));
    let resp = one(&mut svc, chunk(6, spec, 1, 2, 96, vec![0u8; 64]));
    assert_eq!(error_code(&resp), Some(243));
    assert!(matches!(
        one(&mut svc, ApiRequest::MigrateAbort { tenant: 6 }),
        ApiResponse::MigrateAck {
            committed: false,
            ..
        }
    ));

    // Zero or out-of-range chunk counts: 242.
    let resp = one(&mut svc, chunk(8, spec, 0, 0, 64, vec![0u8; 8]));
    assert_eq!(error_code(&resp), Some(242));
    let resp = one(&mut svc, chunk(8, spec, 9, 4, 64, vec![0u8; 8]));
    assert_eq!(error_code(&resp), Some(242));

    // MigrateOut with hostile chunk sizing: coded, never panicking.
    let t = 11;
    assert!(matches!(
        one(
            &mut svc,
            ApiRequest::Open {
                tenant: t,
                spec: TenantSpec::default()
            }
        ),
        ApiResponse::Opened { .. }
    ));
    let resp = one(
        &mut svc,
        ApiRequest::MigrateOut {
            tenant: t,
            chunk_bytes: 0,
        },
    );
    assert_eq!(
        error_code(&resp),
        Some(214),
        "zero chunk size is a bad spec"
    );
    let resp = one(
        &mut svc,
        ApiRequest::MigrateOut {
            tenant: t,
            chunk_bytes: MAX_MIGRATION_CHUNK_BYTES + 1,
        },
    );
    assert_eq!(error_code(&resp), Some(243));
}

/// A frozen tenant's buffered state is bounded: past
/// `REPLAY_QUEUE_MAX_OPS` queued points, mutations are refused with
/// 244 and nothing is applied (the response and the tenant's op count
/// both say so).
#[test]
fn replay_queue_overflow_refuses_without_applying() {
    let mut svc = service();
    let spec = TenantSpec::default();
    assert!(matches!(
        one(&mut svc, ApiRequest::Open { tenant: 3, spec }),
        ApiResponse::Opened { .. }
    ));
    let p = Point::new(vec![1, 2]);
    assert!(matches!(
        one(
            &mut svc,
            ApiRequest::Insert {
                tenant: 3,
                points: vec![p.clone()]
            }
        ),
        ApiResponse::Applied { .. }
    ));
    assert!(matches!(
        one(
            &mut svc,
            ApiRequest::MigrateOut {
                tenant: 3,
                chunk_bytes: 4096
            }
        ),
        ApiResponse::MigrateManifest { .. }
    ));
    // One batch bigger than the whole queue bound: refused atomically.
    let flood: Vec<Point> = (0..(sbc_serve::REPLAY_QUEUE_MAX_OPS + 1))
        .map(|_| p.clone())
        .collect();
    let resp = one(
        &mut svc,
        ApiRequest::Insert {
            tenant: 3,
            points: flood,
        },
    );
    assert_eq!(error_code(&resp), Some(244), "ReplayOverflow");
    let resp = one(&mut svc, ApiRequest::Stats { tenant: 3 });
    let ApiResponse::StatsReply { stats, .. } = resp else {
        panic!("stats reply expected, got {resp:?}");
    };
    assert_eq!(stats.ops_seen, 1, "refused batch must not be applied");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Truncating a real migration frame at any byte never panics the
    /// service: it answers a coded framing error (and counts it), or —
    /// when the truncation happens to land on a record boundary — the
    /// shorter frame's records are simply handled.
    #[test]
    fn truncated_migration_frames_never_panic(cut in 0usize..512, fill in any::<u8>()) {
        let reqs = [
            ApiRequest::MigrateOut { tenant: 1, chunk_bytes: 128 },
            chunk(2, TenantSpec::default(), 0, 2, 256, vec![fill; 96]),
            ApiRequest::CutOver { tenant: 3, peer: 2 },
            ApiRequest::DrainReplay { tenant: 4, max_ops: 32 },
            ApiRequest::MigrateAbort { tenant: 5 },
        ];
        let frame = frame_requests(&reqs);
        let mut svc = service();
        let cut = cut % frame.len();
        let reply = svc.handle_frame(&frame[..cut]);
        let responses = unframe_responses(&reply).expect("reply frames decode");
        prop_assert!(!responses.is_empty());
    }

    /// Arbitrary garbage — raw, and wrapped in a valid envelope — never
    /// panics the entry points, and hostile length headers never force
    /// an allocation: the reply is always a well-formed frame.
    #[test]
    fn garbage_bytes_never_panic_the_entry_points(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut svc = service();
        let reply = svc.handle_frame(&bytes);
        prop_assert!(unframe_responses(&reply).is_ok());
        let env = to_bytes(&sbc::distributed::wire::Envelope {
            machine: 7,
            seq: 1,
            payload: bytes,
        });
        let _ = svc.handle_envelope(&env);
    }

    /// Hostile `ChunkedCheckpoint` headers with arbitrary sizes and
    /// indices always answer a *coded* record (24x, a framing code, or
    /// an ack for the benign corner), never panic, and never grow the
    /// buffered transfer past the migration cap.
    #[test]
    fn hostile_chunk_headers_answer_coded_errors(
        tenant in 0u64..4,
        idx in any::<u32>(),
        total in any::<u32>(),
        total_bytes in any::<u64>(),
        payload_len in 0usize..2048,
    ) {
        let mut svc = service();
        let req = chunk(
            tenant,
            TenantSpec::default(),
            idx,
            total,
            total_bytes,
            vec![0xA5; payload_len],
        );
        match one(&mut svc, req) {
            ApiResponse::ChunkAck { received_bytes, .. } => {
                prop_assert!(received_bytes <= MIGRATION_CAP as u64);
            }
            ApiResponse::Error { code, .. } => {
                prop_assert!(
                    (240..=246).contains(&code) || (200..=214).contains(&code),
                    "unexpected code {code}"
                );
            }
            other => prop_assert!(false, "unexpected response {other:?}"),
        }
    }
}
