//! Live-side service-observability integration: request spans stitching
//! into one causal chain per request, per-tenant SLO histograms and
//! error counters, deterministic slow-request dumps under seeded chaos,
//! and the health record over the wire. This is the "feature on" half
//! of the contract whose inertness half lives in
//! `crates/obs/tests/svc_noop.rs`.
//!
//! Run: `cargo test -p sbc-serve --features obs --test service_obs`.

#![cfg(feature = "obs")]

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use sbc::api::TenantSpec;
use sbc::{FaultPlan, GridParams, Point};
use sbc_obs::svc::{self, RequestId, SlowRequestConfig};
use sbc_obs::trace::{self, TraceKind};
use sbc_serve::{Client, CoresetService, InProcess, Lossy, ServeConfig, Transport};

/// The flight recorder, crash dir, slow-request trigger, and metric
/// registries are process-global; tests that touch them must not
/// interleave.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn points(spec: &TenantSpec, n: usize, seed: u64) -> Vec<Point> {
    let gp = GridParams::from_log_delta(spec.log_delta, spec.dims as usize);
    sbc::geometry::dataset::gaussian_mixture(gp, n, 2, 0.08, seed)
}

/// Drives a fixed tenant workload (open, insert, query, evict,
/// restore-by-insert, close) through whatever transport the client
/// wraps. Protocol-level errors (a Lossy transport exhausting retries)
/// are tolerated — the traffic pattern is what matters.
fn drive<T: Transport>(client: &mut Client<T>, tenants: u64, spec: &TenantSpec) {
    for t in 0..tenants {
        let _ = client.open(t, *spec);
    }
    for t in 0..tenants {
        let pts = points(spec, 24, 100 + t);
        let _ = client.insert(t, &pts);
        let _ = client.query(t);
        let _ = client.evict(t);
        let _ = client.insert(t, &pts[..4]);
        let _ = client.stats(t);
    }
    let _ = client.close(0);
}

/// Arms the flight recorder plus the slow-request probe against a fresh
/// dump directory, runs the seeded chaos workload once, and returns the
/// sorted dump file names it produced.
fn chaos_run(dir: &PathBuf) -> Vec<String> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    sbc_obs::reset();
    svc::reset();
    trace::reset();
    trace::set_enabled(true);
    trace::set_crash_dir(Some(dir.clone()));
    svc::set_slow_request(SlowRequestConfig {
        threshold_ns: 0, // wall time plays no part: probe only
        probe_seed: 0xD5,
        probe_every: 4,
        max_dumps: 0,
    });

    let plan = FaultPlan::parse("chaos@7").expect("known profile");
    let mut client = Client::new(Lossy::new(
        CoresetService::new(ServeConfig::default()),
        plan,
        3,
    ));
    client.hello().expect("hello");
    let spec = TenantSpec {
        seed: 21,
        ..TenantSpec::default()
    };
    drive(&mut client, 4, &spec);

    svc::set_slow_request(SlowRequestConfig::DISABLED);
    trace::set_crash_dir(None);
    trace::set_enabled(false);

    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    names
}

#[test]
fn slow_request_dumps_are_deterministic_under_seeded_chaos() {
    let _guard = exclusive();
    let dir_a = std::env::temp_dir().join("sbc-svc-obs-chaos-a");
    let dir_b = std::env::temp_dir().join("sbc-svc-obs-chaos-b");
    let first = chaos_run(&dir_a);
    let second = chaos_run(&dir_b);

    assert!(
        !first.is_empty(),
        "a 1-in-4 probe over this workload must select requests"
    );
    assert_eq!(
        first, second,
        "identical seeds must dump identical request sets"
    );
    for name in &first {
        assert!(
            name.starts_with("slow-") && name.ends_with(".json"),
            "dump names follow slow-<tenant>-<seq>.json, got {name}"
        );
        let text = std::fs::read_to_string(dir_a.join(name)).unwrap();
        let doc = sbc_obs::json::JsonValue::parse(&text).expect("dump parses as JSON");
        let reason = doc.get("reason").and_then(|r| r.as_str()).unwrap();
        assert!(
            reason.contains("slow-request probe"),
            "dump records why it fired: {reason}"
        );
        assert!(
            doc.get("events")
                .and_then(sbc_obs::json::JsonValue::as_array)
                .is_some_and(|e| !e.is_empty()),
            "dump carries flight-recorder events"
        );
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn slow_dump_budget_stops_the_trigger_from_filling_the_disk() {
    let _guard = exclusive();
    let dir = std::env::temp_dir().join("sbc-svc-obs-budget");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    svc::reset();
    trace::reset();
    trace::set_enabled(true);
    trace::set_crash_dir(Some(dir.clone()));
    svc::set_slow_request(SlowRequestConfig {
        threshold_ns: 1, // every request is "slow"
        probe_seed: 0,
        probe_every: 0,
        max_dumps: 3,
    });

    for seq in 1..=32 {
        trace::instant("svc.response", RequestId::for_tenant(1, seq).causal(), 0);
        svc::maybe_dump_slow(RequestId::for_tenant(1, seq), u64::MAX);
    }
    assert_eq!(svc::slow_dumps(), 3, "budget caps the dump count");
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 3);

    svc::set_slow_request(SlowRequestConfig::DISABLED);
    trace::set_crash_dir(None);
    trace::set_enabled(false);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn request_spans_stitch_into_one_causal_chain() {
    let _guard = exclusive();
    sbc_obs::reset();
    svc::reset();
    trace::reset();
    trace::set_enabled(true);

    let mut client = Client::new(InProcess::new(CoresetService::new(ServeConfig::default())));
    client.hello().expect("hello");
    let spec = TenantSpec {
        seed: 33,
        ..TenantSpec::default()
    };
    let tenant = 5u64;
    assert!(!client.open(tenant, spec).expect("open"));
    let pts = points(&spec, 16, 9);
    assert_eq!(client.insert(tenant, &pts).expect("insert"), 16);

    let snap = trace::snapshot();
    trace::set_enabled(false);

    // Every event this tenant's requests emitted carries
    // store_id = tenant + 1; group them by op_index (= request seq).
    let tenant_events: Vec<_> = snap
        .merged()
        .into_iter()
        .map(|(_, rec)| rec)
        .filter(|rec| rec.ids.store_id == tenant + 1)
        .collect();
    assert!(!tenant_events.is_empty(), "tenant requests left no events");

    // The insert was the third record (hello, open, insert), and its
    // chain must hold the root span, the backend span nested inside it,
    // and the response instant — all on one op_index.
    let insert_chain: Vec<_> = tenant_events
        .iter()
        .filter(|rec| rec.ids.op_index == 3)
        .collect();
    let begins: Vec<&str> = insert_chain
        .iter()
        .filter(|r| r.kind == TraceKind::SpanBegin)
        .map(|r| r.label)
        .collect();
    assert!(
        begins.contains(&"svc.request"),
        "chain misses the root span: {begins:?}"
    );
    assert!(
        begins.contains(&"svc.backend"),
        "chain misses the backend span: {begins:?}"
    );
    assert!(
        insert_chain
            .iter()
            .any(|r| r.kind == TraceKind::Instant && r.label == "svc.response"),
        "chain misses the response instant"
    );
    // A span chain is only a chain if it closes.
    assert_eq!(
        insert_chain
            .iter()
            .filter(|r| r.kind == TraceKind::SpanBegin)
            .count(),
        insert_chain
            .iter()
            .filter(|r| r.kind == TraceKind::SpanEnd)
            .count(),
        "spans in the chain must balance"
    );

    // The service-scoped hello wrapped its store id to "unset" — no
    // tenant chain may claim op 1.
    assert!(
        !tenant_events.iter().any(|rec| rec.ids.op_index == 1),
        "hello must stay store-less"
    );

    // The Perfetto export carries the same chain as named slices.
    let chrome = trace::chrome_trace(&snap);
    let names: Vec<&str> = chrome
        .get("traceEvents")
        .and_then(sbc_obs::json::JsonValue::as_array)
        .expect("traceEvents array")
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for expected in ["svc.request", "svc.backend", "svc.response"] {
        assert!(
            names.contains(&expected),
            "chrome trace misses {expected}: {names:?}"
        );
    }
}

#[test]
fn slo_histograms_and_error_counters_record_per_tenant_traffic() {
    let _guard = exclusive();
    sbc_obs::reset();
    svc::reset();
    sbc_obs::set_enabled(true);
    svc::set_metrics_enabled(true);

    let mut client = Client::new(InProcess::new(CoresetService::new(ServeConfig::default())));
    client.hello().expect("hello");
    let spec = TenantSpec {
        seed: 44,
        ..TenantSpec::default()
    };
    assert!(!client.open(8, spec).expect("open"));
    let pts = points(&spec, 32, 11);
    assert_eq!(client.insert(8, &pts).expect("insert"), 32);
    let _ = client.query(8).expect("query");

    // Insert into a tenant that was never opened: the wire error's code
    // must land in its stable `svc.error.<code>` counter.
    let err = client.insert(777, &pts[..1]).expect_err("unopened tenant");
    let code = err.code();

    let snap = sbc_obs::snapshot();
    // The timeline sampler's view: gauges plus the per-tenant rows
    // (read before dropping the global flag — sampling gates on it).
    let sampled = svc::sampled_counters();
    sbc_obs::set_enabled(false);

    let hist = snap
        .histogram("svc.latency.single.insert")
        .expect("insert latencies registered");
    assert!(hist.count >= 2, "both inserts recorded, got {}", hist.count);
    let p50 = hist.quantile(0.5);
    let p999 = hist.quantile(0.999);
    assert!(p50 > 0 && p999 >= p50, "quantiles ordered: {p50} ≤ {p999}");
    assert!(
        snap.histogram("svc.latency.single.query")
            .is_some_and(|h| h.count >= 1),
        "query latencies registered"
    );
    assert_eq!(
        snap.counter(&format!("svc.error.{code}")),
        Some(1),
        "wire error code {code} counted once"
    );

    let get = |name: &str| {
        sampled
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing sampled counter {name}"))
    };
    assert_eq!(get("svc.tenants.live"), 1);
    assert_eq!(get("svc.tenants.evicted"), 0);
    assert!(get("svc.tenant.8.ops") >= 3, "open+insert+query tracked");
    assert_eq!(get("svc.tenant.777.errors"), 1);
    assert!(get("svc.tenant.8.p99_ns") > 0);

    svc::set_metrics_enabled(true);
}

#[test]
fn health_report_over_the_wire_tracks_the_tenant_fleet() {
    let _guard = exclusive();
    let mut client = Client::new(InProcess::new(CoresetService::new(ServeConfig::default())));
    client.hello().expect("hello");

    let fresh = client.health().expect("health");
    assert_eq!(fresh.tenants_live, 0);
    assert_eq!(fresh.frame_errors, 0);
    assert!(!fresh.shutting_down);
    assert!(fresh.requests_total >= 1, "hello itself is counted");
    assert_eq!(
        fresh.budget_headroom_bytes,
        u64::MAX,
        "default config is unlimited"
    );

    let spec = TenantSpec {
        seed: 55,
        ..TenantSpec::default()
    };
    client.open(1, spec).expect("open");
    client.open(2, spec).expect("open");
    let pts = points(&spec, 16, 13);
    client.insert(1, &pts).expect("insert");
    client.evict(2).expect("evict");

    let report = client.health().expect("health");
    assert_eq!(report.tenants_live, 1);
    assert_eq!(report.tenants_evicted, 1);
    assert!(report.measured_bytes > 0, "live tenant is measured");
    assert!(report.spill_bytes > 0, "evicted tenant parked bytes");
    assert!(report.requests_total > fresh.requests_total);

    client.shutdown().expect("shutdown");
    let last = client.health().expect("health during shutdown");
    assert!(last.shutting_down);
}
