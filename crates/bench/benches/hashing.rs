//! Micro-bench: λ-wise independent hash evaluation — the inner loop of
//! every streaming update (3 roles × (L+1) levels per op).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_hash::{KWiseBernoulli, KWiseHash};

fn bench_kwise_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("kwise_eval");
    let mut rng = StdRng::seed_from_u64(1);
    for lambda in [2usize, 8, 32, 128] {
        let h = KWiseHash::new(lambda, &mut rng);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(lambda), &h, |b, h| {
            let mut key = 0u128;
            b.iter(|| {
                key = key.wrapping_add(0x9E37_79B9);
                black_box(h.eval(key))
            });
        });
    }
    group.finish();
}

fn bench_bernoulli(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let b32 = KWiseBernoulli::new(0.1, 32, &mut rng);
    c.bench_function("kwise_bernoulli_keep_l32", |b| {
        let mut key = 0u128;
        b.iter(|| {
            key = key.wrapping_add(0xDEAD_BEEF);
            black_box(b32.keep(key))
        });
    });
}

criterion_group!(benches, bench_kwise_eval, bench_bernoulli);
criterion_main!(benches);
