//! End-to-end pipeline: coreset build + capacitated Lloyd on the coreset
//! (what a downstream user actually runs).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::Workload;
use sbc_clustering::capacitated::capacitated_lloyd_raw;
use sbc_core::{build_coreset, CoresetParams};
use sbc_geometry::GridParams;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let gp = GridParams::from_log_delta(8, 2);
    let n = 6000usize;
    let k = 3;
    let params = CoresetParams::builder(k, gp).build().unwrap();
    let pts = Workload::Imbalanced.generate(gp, n, k, 13);
    let cap = n as f64 / k as f64 * 1.25;
    group.bench_function("coreset_plus_capacitated_lloyd", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(8);
            let cs = build_coreset(&pts, &params, &mut rng).unwrap();
            let (cpts, cws) = cs.split();
            capacitated_lloyd_raw(&cpts, Some(&cws), k, 2.0, cap, 4, &mut rng).cost
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
