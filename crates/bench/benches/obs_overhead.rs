//! Guard for the `sbc-obs` zero-cost contract: with instrumentation
//! compiled in but recording disabled ("enabled-but-idle"), the per-call
//! cost of the metric primitives must stay under 1% of the measured
//! per-op streaming ingest cost. The same budget applies to the flight
//! recorder's disabled fast path, and with the recorder *on* at its
//! default 64Ki-event ring the whole batched ingest may slow down by at
//! most 5%.
//!
//! The memory-telemetry pillar gets the same treatment: this binary
//! installs [`sbc_obs::alloc::TrackingAlloc`] globally (a passthrough
//! unless built with `--features obs-alloc`), prices its bookkeeping at
//! the *measured* alloc/dealloc pairs per ingest op, and holds that
//! share under 1%; a `sbc_obs::timeline` sampler running at the default
//! 250 ms cadence may slow the same ingest by at most 2%.
//!
//! Run with `cargo bench --bench obs_overhead [--features obs,obs-alloc]`.
//! This is a plain `harness = false` guard (it asserts and exits
//! non-zero on regression) rather than a Criterion tracker, because its
//! job is a pass/fail bound, not a trend line.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::Workload;
use sbc_core::CoresetParams;
use sbc_geometry::GridParams;
use sbc_streaming::model::insertion_stream;
use sbc_streaming::{StreamCoresetBuilder, StreamParams};
use std::time::Instant;

/// Route the bench's own allocations through the tracking allocator so
/// the "enabled" state under test is the real one (passthrough to
/// `System` without the `obs-alloc` feature).
#[global_allocator]
static ALLOC: sbc_obs::alloc::TrackingAlloc = sbc_obs::alloc::TrackingAlloc;

/// Generous bound on instrumentation call sites executed per ingest op
/// (amortized): one sign tally plus, per batch of 4096 ops, the batch
/// counters, two spans, and the per-(level, role) prune tallies.
const SITES_PER_OP: f64 = 16.0;

/// Best-of-`reps` seconds for one full ingest of `ops`.
fn ingest_secs(params: &CoresetParams, ops: &[sbc_streaming::model::StreamOp], reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = StreamCoresetBuilder::new(params.clone(), StreamParams::default(), &mut rng);
        let start = Instant::now();
        b.process_all(ops);
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(b.net_count());
    }
    best
}

/// Nanoseconds per idle `Counter::add` call (the gate is one relaxed
/// atomic load + a predictable branch; a no-op build measures ~0).
fn idle_counter_ns_per_call(calls: u64) -> f64 {
    let c = sbc_obs::counter("bench.obs_overhead.idle");
    let start = Instant::now();
    for i in 0..calls {
        c.add(std::hint::black_box(i & 1));
    }
    start.elapsed().as_secs_f64() * 1e9 / calls as f64
}

/// Nanoseconds per `trace::instant` call with the recorder disabled
/// (the gate is one relaxed atomic load, same as the idle counter).
fn idle_trace_ns_per_call(calls: u64) -> f64 {
    use sbc_obs::trace::CausalIds;
    let start = Instant::now();
    for i in 0..calls {
        sbc_obs::trace::instant(
            "bench.obs_overhead.trace_idle",
            CausalIds::NONE,
            std::hint::black_box(i & 1),
        );
    }
    start.elapsed().as_secs_f64() * 1e9 / calls as f64
}

fn main() {
    sbc_obs::set_enabled(false); // enabled-but-idle is the state under test
    sbc_obs::trace::set_enabled(false);

    let gp = GridParams::from_log_delta(8, 2);
    let params = CoresetParams::builder(3, gp).build().unwrap();
    let pts = Workload::Gaussian.generate(gp, 4000, 3, 9);
    let ops = insertion_stream(&pts);

    let op_ns = ingest_secs(&params, &ops, 3) * 1e9 / ops.len() as f64;
    let call_ns = idle_counter_ns_per_call(50_000_000);
    let overhead = SITES_PER_OP * call_ns / op_ns;

    println!("ingest: {op_ns:.1} ns/op");
    println!("idle counter: {call_ns:.3} ns/call");
    println!(
        "worst-case idle instrumentation share ({SITES_PER_OP:.0} sites/op): {:.4}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.01,
        "enabled-but-idle overhead {:.3}% breaches the 1% budget \
         ({call_ns:.3} ns/call vs {op_ns:.1} ns/op)",
        overhead * 100.0
    );
    println!("OK: enabled-but-idle overhead is within the 1% budget");

    // Flight recorder, disabled: same 1% budget as the metric gate.
    let trace_call_ns = idle_trace_ns_per_call(50_000_000);
    let trace_idle_overhead = SITES_PER_OP * trace_call_ns / op_ns;
    println!("idle trace event: {trace_call_ns:.3} ns/call");
    println!(
        "worst-case idle tracing share ({SITES_PER_OP:.0} sites/op): {:.4}%",
        trace_idle_overhead * 100.0
    );
    assert!(
        trace_idle_overhead < 0.01,
        "tracing-enabled-but-idle overhead {:.3}% breaches the 1% budget \
         ({trace_call_ns:.3} ns/call vs {op_ns:.1} ns/op)",
        trace_idle_overhead * 100.0
    );
    println!("OK: tracing-enabled-but-idle overhead is within the 1% budget");

    // Flight recorder, recording at the default 64Ki-event ring: the
    // whole batched ingest (spans, prune instants, ring pushes) must
    // cost at most 5% over the untraced run measured above.
    sbc_obs::trace::set_capacity(64 * 1024);
    sbc_obs::trace::set_enabled(true);
    let traced_op_ns = ingest_secs(&params, &ops, 3) * 1e9 / ops.len() as f64;
    sbc_obs::trace::set_enabled(false);
    let recorded = sbc_obs::trace::snapshot().total_events();
    let steady_overhead = traced_op_ns / op_ns - 1.0;
    println!("traced ingest: {traced_op_ns:.1} ns/op ({recorded} events in ring)");
    println!(
        "recorder steady-state overhead: {:.2}%",
        steady_overhead * 100.0
    );
    assert!(
        steady_overhead < 0.05,
        "64Ki-ring recorder overhead {:.2}% breaches the 5% budget \
         ({traced_op_ns:.1} ns/op traced vs {op_ns:.1} ns/op untraced)",
        steady_overhead * 100.0
    );
    if cfg!(feature = "obs") {
        assert!(recorded > 0, "recording run captured no events");
    }
    println!("OK: 64Ki-ring recorder steady-state overhead is within the 5% budget");

    // Tracking allocator, enabled but idle: `set_enabled(false)` mirrors
    // the metric/tracing gates above (recording stops, the allocator
    // stays installed), so the idle cost per alloc/dealloc pair is one
    // relaxed load plus a header-flag write. Price that and charge it at
    // the *measured* pair count per ingest op. The gate-open (recording)
    // cost is printed informationally — it is a measurement mode, not an
    // always-on tax, so it carries no budget.
    let alloc_before = sbc_obs::alloc::snapshot();
    let base_secs = ingest_secs(&params, &ops, 3);
    let alloc_after = sbc_obs::alloc::snapshot();
    let alloc_op_ns = base_secs * 1e9 / ops.len() as f64;
    let pairs_per_op = if alloc_after.tracking {
        let pairs = alloc_after
            .total
            .allocs
            .saturating_sub(alloc_before.total.allocs) as f64
            / 3.0;
        pairs / ops.len() as f64
    } else {
        SITES_PER_OP // generous fallback when nothing counted the truth
    };
    let bench_pairs = 2_000_000u64;
    let start = Instant::now();
    for i in 0..bench_pairs {
        sbc_obs::alloc::__bench_record_pair(std::hint::black_box(256 + (i & 0xFF)));
    }
    let active_pair_ns = start.elapsed().as_secs_f64() * 1e9 / bench_pairs as f64;
    sbc_obs::alloc::set_enabled(false);
    let start = Instant::now();
    for i in 0..bench_pairs {
        sbc_obs::alloc::__bench_record_pair(std::hint::black_box(256 + (i & 0xFF)));
    }
    let idle_pair_ns = start.elapsed().as_secs_f64() * 1e9 / bench_pairs as f64;
    sbc_obs::alloc::set_enabled(true);
    let alloc_overhead = pairs_per_op * idle_pair_ns / alloc_op_ns;
    println!(
        "alloc record pair: {idle_pair_ns:.3} ns idle, {active_pair_ns:.3} ns recording \
         ({pairs_per_op:.2} pairs/op measured)"
    );
    println!(
        "tracking-allocator idle share: {:.4}%",
        alloc_overhead * 100.0
    );
    assert!(
        alloc_overhead < 0.01,
        "tracking-allocator enabled-but-idle overhead {:.3}% breaches the 1% budget \
         ({idle_pair_ns:.3} ns/pair × {pairs_per_op:.2} pairs/op vs {alloc_op_ns:.1} ns/op)",
        alloc_overhead * 100.0
    );
    println!("OK: tracking-allocator enabled-but-idle overhead is within the 1% budget");

    // Timeline sampler at the default cadence: the whole ingest may
    // slow down by at most 2% with a live sampler snapshotting RSS,
    // counters and allocator attribution in the background.
    let sampler = sbc_obs::timeline::Sampler::start(
        std::time::Duration::from_millis(sbc_obs::timeline::DEFAULT_CADENCE_MS),
        sbc_obs::timeline::DEFAULT_CAPACITY,
        None,
        None,
    );
    let sampled_secs = ingest_secs(&params, &ops, 3);
    let timeline = sampler.stop();
    let sampling_overhead = (sampled_secs / base_secs - 1.0).max(0.0);
    println!(
        "sampled ingest: {:.1} ns/op ({} samples taken)",
        sampled_secs * 1e9 / ops.len() as f64,
        timeline.len()
    );
    println!(
        "sampler steady-state overhead: {:.2}%",
        sampling_overhead * 100.0
    );
    assert!(
        sampling_overhead < 0.02,
        "default-cadence sampler overhead {:.2}% breaches the 2% budget",
        sampling_overhead * 100.0
    );
    assert!(
        !timeline.is_empty(),
        "sampler took no samples during the ingest"
    );
    println!("OK: default-cadence sampler overhead is within the 2% budget");
}
