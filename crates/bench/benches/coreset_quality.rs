//! Time to *verify* coreset quality (the E1 battery) — how expensive the
//! empirical strong-coreset check is at a given instance size.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::{quality, Workload};
use sbc_core::{build_coreset, CoresetParams};
use sbc_geometry::GridParams;

fn bench_quality_battery(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality_battery");
    group.sample_size(10);
    let gp = GridParams::from_log_delta(8, 2);
    let n = 2000usize;
    let params = CoresetParams::builder(3, gp).build().unwrap();
    let pts = Workload::Gaussian.generate(gp, n, 3, 15);
    let mut rng = StdRng::seed_from_u64(9);
    let cs = build_coreset(&pts, &params, &mut rng).unwrap();
    group.bench_function("battery_2x1", |b| {
        b.iter(|| quality(&pts, &cs, &params, 2, &[1.5], 42).worst());
    });
    group.finish();
}

criterion_group!(benches, bench_quality_battery);
criterion_main!(benches);
