//! Merge-tree fold cost: how expensive is re-unifying `S` finished
//! shard builders, and what does end-to-end sharded ingest cost on top
//! of the per-shard streaming itself.
//!
//! Two groups:
//! - `merge_fold`: shard builders are checkpointed once; each iteration
//!   restores fresh copies (merging consumes its inputs) and folds them
//!   via `StreamCoresetBuilder::merge_many`. The restore cost is part of
//!   the measurement but scales the same way the fold does (both walk
//!   the union of store states), so the curve across shard counts still
//!   reads as merge-kernel cost.
//! - `sharded_ingest`: the whole `ShardedIngest` pipeline — route,
//!   per-shard batched ingest, fold, assemble — serial vs rayon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbc_bench::Workload;
use sbc_core::CoresetParams;
use sbc_geometry::GridHierarchy;
use sbc_geometry::GridParams;
use sbc_streaming::model::insertion_stream;
use sbc_streaming::{StreamCoresetBuilder, StreamParams};

/// `s` compatible shard builders (shared grid + hash seed, like
/// `ShardedIngest`), each fed a round-robin slice of the workload.
fn build_shards(params: &CoresetParams, s: usize, n: usize) -> Vec<StreamCoresetBuilder> {
    let pts = Workload::Gaussian.generate(params.grid, n, 3, 9);
    let mut rng = StdRng::seed_from_u64(7);
    let grid = GridHierarchy::new(params.grid, &mut rng);
    let hash_seed: u64 = rng.gen();
    let sp = StreamParams::builder().shards(s).build().unwrap();
    let mut builders: Vec<StreamCoresetBuilder> = (0..s)
        .map(|_| {
            let mut hrng = StdRng::seed_from_u64(hash_seed);
            StreamCoresetBuilder::with_grid(params.clone(), sp, grid.clone(), &mut hrng)
        })
        .collect();
    for (i, p) in pts.iter().enumerate() {
        builders[i % s].insert(p);
    }
    builders
}

fn bench_merge_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_fold");
    group.sample_size(10);
    let gp = GridParams::from_log_delta(8, 2);
    let params = CoresetParams::builder(3, gp).build().unwrap();
    for s in [2usize, 4, 8] {
        let snaps: Vec<_> = build_shards(&params, s, 8000)
            .iter()
            .map(|b| b.checkpoint().expect("exact backend"))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(s), &snaps, |b, snaps| {
            b.iter(|| {
                let builders: Vec<StreamCoresetBuilder> = snaps
                    .iter()
                    .map(|s| StreamCoresetBuilder::restore(s).expect("own snapshot"))
                    .collect();
                StreamCoresetBuilder::merge_many(builders)
                    .expect("compatible shards")
                    .merge_depth()
            });
        });
    }
    group.finish();
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_ingest");
    group.sample_size(10);
    let gp = GridParams::from_log_delta(8, 2);
    let params = CoresetParams::builder(3, gp).build().unwrap();
    let pts = Workload::Gaussian.generate(gp, 8000, 3, 9);
    let ops = insertion_stream(&pts);
    for s in [1usize, 4, 8] {
        for (mode, parallel) in [("serial", false), ("parallel", true)] {
            if s == 1 && parallel {
                continue; // one shard has nothing to parallelise over
            }
            let sp = StreamParams::builder()
                .shards(s)
                .parallel(parallel)
                .threads(s)
                .build()
                .unwrap();
            group.bench_with_input(BenchmarkId::new(mode, s), &ops, |b, ops| {
                b.iter(|| {
                    let mut ingest = sbc::ShardedIngest::new(params.clone(), sp, 7).expect("valid");
                    ingest.process_all(ops);
                    ingest.finish().expect("sharded coreset").len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_merge_fold, bench_sharded_ingest);
criterion_main!(benches);
