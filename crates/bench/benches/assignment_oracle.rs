//! §3.3 assignment oracle: build time and per-point assignment
//! throughput (the O(k²d)-per-point claim).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::Workload;
use sbc_clustering::capacitated::capacitated_lloyd_raw;
use sbc_core::assign::build_assignment_oracle;
use sbc_core::{build_coreset, CoresetParams};
use sbc_geometry::GridParams;

fn bench_oracle(c: &mut Criterion) {
    let gp = GridParams::from_log_delta(8, 2);
    let n = 6000usize;
    let k = 3;
    let params = CoresetParams::builder(k, gp).build().unwrap();
    let pts = Workload::Gaussian.generate(gp, n, k, 17);
    let cap = n as f64 / k as f64 * 1.25;
    let mut rng = StdRng::seed_from_u64(10);
    let cs = build_coreset(&pts, &params, &mut rng).unwrap();
    let (cpts, cws) = cs.split();
    let sol = capacitated_lloyd_raw(&cpts, Some(&cws), k, 2.0, cap, 6, &mut rng);

    let mut group = c.benchmark_group("assignment_oracle");
    group.sample_size(10);
    group.bench_function("build", |b| {
        b.iter(|| {
            build_assignment_oracle(&cs, &params, &sol.centers, cap)
                .unwrap()
                .coreset_cost
        });
    });
    let oracle = build_assignment_oracle(&cs, &params, &sol.centers, cap).unwrap();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("assign_all", |b| {
        b.iter(|| oracle.assign_all(&pts).cost);
    });
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
