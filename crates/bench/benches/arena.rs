//! Micro-bench: the flat open-addressing [`OpenTable`] arena against the
//! SipHash-free [`Key128Map`] it replaced in the hot `Storing` path —
//! insert, probe (hit and miss), and full iteration, at store-realistic
//! sizes (a few hundred to a few thousand live cells; DESIGN.md §9).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbc_hash::{Key128Map, OpenTable};

/// Deterministic well-mixed keys, reproducible across runs.
fn keys(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| sbc_obs::fault::splitmix64(i ^ 0x5851_F42D_4C95_7F2D))
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_insert");
    for n in [256usize, 4096] {
        let ks = keys(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("open_table", n), &ks, |b, ks| {
            b.iter(|| {
                let mut t: OpenTable<u64> = OpenTable::with_expected(ks.len());
                for &k in ks {
                    *t.insert_absent(k, 0) += k;
                }
                black_box(t.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("key128_map", n), &ks, |b, ks| {
            b.iter(|| {
                let mut m: Key128Map<u64> = Key128Map::default();
                for &k in ks {
                    *m.entry(k as u128).or_insert(0) += k;
                }
                black_box(m.len())
            });
        });
    }
    group.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_probe");
    let n = 4096usize;
    let ks = keys(n);
    let mut table: OpenTable<u64> = OpenTable::with_expected(n);
    let mut map: Key128Map<u64> = Key128Map::default();
    for &k in &ks {
        *table.insert_absent(k, 0) += k;
        map.insert(k as u128, k);
    }
    // Misses draw from a disjoint key range (splitmix64 is a bijection,
    // so the offset stream cannot collide with the resident one).
    let misses = keys(2 * n)[n..].to_vec();

    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("open_table_hit", n), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &ks {
                acc = acc.wrapping_add(*table.get(k).unwrap());
            }
            black_box(acc)
        });
    });
    group.bench_function(BenchmarkId::new("key128_map_hit", n), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &ks {
                acc = acc.wrapping_add(*map.get(&(k as u128)).unwrap());
            }
            black_box(acc)
        });
    });
    group.bench_function(BenchmarkId::new("open_table_miss", n), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &k in &misses {
                hits += usize::from(table.get(k).is_some());
            }
            black_box(hits)
        });
    });
    group.bench_function(BenchmarkId::new("key128_map_miss", n), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &k in &misses {
                hits += usize::from(map.contains_key(&(k as u128)));
            }
            black_box(hits)
        });
    });
    group.finish();
}

fn bench_iterate(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_iterate");
    let n = 4096usize;
    let ks = keys(n);
    let mut table: OpenTable<u64> = OpenTable::with_expected(n);
    let mut map: Key128Map<u64> = Key128Map::default();
    for &k in &ks {
        *table.insert_absent(k, 0) += k;
        map.insert(k as u128, k);
    }
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("open_table", n), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (k, v) in table.iter() {
                acc = acc.wrapping_add(k ^ *v);
            }
            black_box(acc)
        });
    });
    group.bench_function(BenchmarkId::new("key128_map", n), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (k, v) in map.iter() {
                acc = acc.wrapping_add(*k as u64 ^ *v);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_probe, bench_iterate);
criterion_main!(benches);
