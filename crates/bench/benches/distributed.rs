//! Distributed protocol wall time (serial vs threaded machines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbc_bench::Workload;
use sbc_core::CoresetParams;
use sbc_distributed::DistributedCoreset;
use sbc_geometry::dataset::split_round_robin;
use sbc_geometry::GridParams;
use sbc_streaming::StreamParams;

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_protocol");
    group.sample_size(10);
    let gp = GridParams::from_log_delta(8, 2);
    let params = CoresetParams::builder(3, gp).build().unwrap();
    let pts = Workload::Gaussian.generate(gp, 4000, 3, 11);
    for s in [2usize, 8] {
        let shards = split_round_robin(&pts, s);
        group.bench_with_input(BenchmarkId::new("serial", s), &shards, |b, sh| {
            b.iter(|| {
                DistributedCoreset::run(sh, &params, &StreamParams::default(), 13)
                    .unwrap()
                    .0
                    .len()
            });
        });
        group.bench_with_input(BenchmarkId::new("threaded", s), &shards, |b, sh| {
            b.iter(|| {
                DistributedCoreset::run_threaded(sh, &params, &StreamParams::default(), 13)
                    .unwrap()
                    .0
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
