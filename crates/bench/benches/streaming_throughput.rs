//! Streaming update throughput: operations per second through the full
//! o-ladder (all instances, all levels, all three roles).
//!
//! Three ingest paths over the same stream (state is bit-identical, see
//! the `ingest_determinism` tests): `per_op` — the reference linear scan
//! over every instance per operation; `batched` — SoA precompute plus
//! nested-threshold ladder pruning; `batched_parallel` — the batched
//! path with the instance ladder sharded across threads. The `mixed`
//! group repeats the comparison on a deletion-heavy interleaved stream,
//! where per-op overhead (not end-state size) dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::Workload;
use sbc_core::CoresetParams;
use sbc_geometry::GridParams;
use sbc_streaming::model::{churn_stream, insertion_stream, StreamOp};
use sbc_streaming::{StreamCoresetBuilder, StreamParams};

fn bench_ingest_paths(c: &mut Criterion, group_name: &str, ops: &[StreamOp]) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    let gp = GridParams::from_log_delta(8, 2);
    let params = CoresetParams::builder(3, gp).build().unwrap();
    let n = ops.len();
    group.throughput(Throughput::Elements(n as u64));

    let fresh = |sp: StreamParams| {
        let mut rng = StdRng::seed_from_u64(7);
        StreamCoresetBuilder::new(params.clone(), sp, &mut rng)
    };

    group.bench_with_input(BenchmarkId::new("per_op", n), &n, |b, _| {
        b.iter(|| {
            let mut builder = fresh(StreamParams::default());
            for op in ops {
                builder.process(op);
            }
            builder.net_count()
        });
    });
    group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
        b.iter(|| {
            let mut builder = fresh(StreamParams::default());
            builder.process_all(ops);
            builder.net_count()
        });
    });
    group.bench_with_input(BenchmarkId::new("batched_parallel", n), &n, |b, _| {
        b.iter(|| {
            let mut builder = fresh(StreamParams {
                parallel: true,
                ..StreamParams::default()
            });
            builder.process_all(ops);
            builder.net_count()
        });
    });
    group.finish();
}

fn bench_stream_ops(c: &mut Criterion) {
    let gp = GridParams::from_log_delta(8, 2);
    let pts = Workload::Gaussian.generate(gp, 4000, 3, 9);
    bench_ingest_paths(c, "stream_ops", &insertion_stream(&pts));
}

fn bench_mixed_ops(c: &mut Criterion) {
    // Deletion-heavy: 30% of the points survive, so ~54% of all ops are
    // part of insert-then-delete churn pairs.
    let gp = GridParams::from_log_delta(8, 2);
    let pts = Workload::Gaussian.generate(gp, 4000, 3, 9);
    let mut rng = StdRng::seed_from_u64(17);
    bench_ingest_paths(c, "stream_ops_mixed", &churn_stream(&pts, 0.3, &mut rng));
}

criterion_group!(benches, bench_stream_ops, bench_mixed_ops);
criterion_main!(benches);
