//! Streaming update throughput: operations per second through the full
//! o-ladder (all instances, all levels, all three roles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::Workload;
use sbc_core::CoresetParams;
use sbc_geometry::GridParams;
use sbc_streaming::{StreamCoresetBuilder, StreamParams};

fn bench_stream_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ops");
    group.sample_size(10);
    let gp = GridParams::from_log_delta(8, 2);
    let params = CoresetParams::practical(3, 2.0, 0.2, 0.2, gp);
    let n = 4000usize;
    let pts = Workload::Gaussian.generate(gp, n, 3, 9);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, _| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut builder = StreamCoresetBuilder::new(params.clone(), StreamParams::default(), &mut rng);
            for p in &pts {
                builder.insert(p);
            }
            builder.net_count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_stream_ops);
criterion_main!(benches);
