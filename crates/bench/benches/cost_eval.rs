//! Capacitated cost evaluation on weighted coresets — the operation the
//! strong-coreset property makes cheap (|Q'| ≪ n nodes in the flow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::Workload;
use sbc_clustering::cost::capacitated_cost;
use sbc_clustering::kmeanspp::kmeanspp_seeds;
use sbc_core::{build_coreset, CoresetParams};
use sbc_geometry::GridParams;

fn bench_cost_on_coreset_vs_full(c: &mut Criterion) {
    let gp = GridParams::from_log_delta(8, 2);
    let n = 4000;
    let k = 3;
    let params = CoresetParams::builder(k, gp).build().unwrap();
    let pts = Workload::Gaussian.generate(gp, n, k, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let cs = build_coreset(&pts, &params, &mut rng).unwrap();
    let (cpts, cws) = cs.split();
    let centers = kmeanspp_seeds(&pts, None, k, 2.0, &mut rng);
    let cap = n as f64 / k as f64 * 1.3;

    let mut group = c.benchmark_group("capacitated_cost");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
        b.iter(|| capacitated_cost(&pts, None, &centers, cap, 2.0));
    });
    group.bench_with_input(BenchmarkId::new("coreset", cs.len()), &n, |b, _| {
        b.iter(|| capacitated_cost(&cpts, Some(&cws), &centers, cap, 2.0));
    });
    group.finish();
}

criterion_group!(benches, bench_cost_on_coreset_vs_full);
criterion_main!(benches);
