//! Offline coreset construction time (Theorem 3.19: O(nd log²(ndΔ)),
//! i.e. near-linear in n) — experiment E3's criterion counterpart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::Workload;
use sbc_core::{build_coreset, CoresetParams};
use sbc_geometry::GridParams;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("coreset_build");
    group.sample_size(10);
    let gp = GridParams::from_log_delta(8, 2);
    let params = CoresetParams::builder(3, gp).build().unwrap();
    for n in [4000usize, 16_000, 64_000] {
        let pts = Workload::Gaussian.generate(gp, n, 3, 5);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(6);
                build_coreset(&pts, &params, &mut rng).unwrap().len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
