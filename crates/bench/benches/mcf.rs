//! Min-cost-flow / transportation solve times — the substrate behind
//! every capacitated cost evaluation (paper §3.3: the fractional optimum
//! is a min-cost flow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbc_bench::Workload;
use sbc_flow::transport::optimal_fractional_assignment;
use sbc_geometry::GridParams;

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transportation_solve");
    group.sample_size(10);
    let gp = GridParams::from_log_delta(8, 2);
    for n in [200usize, 1000, 4000] {
        let pts = Workload::Gaussian.generate(gp, n, 4, 7);
        let centers = Workload::Uniform.generate(gp, 4, 4, 8);
        let cap = n as f64 / 4.0 * 1.2;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                optimal_fractional_assignment(&pts, None, &centers, cap, 2.0)
                    .unwrap()
                    .cost
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
