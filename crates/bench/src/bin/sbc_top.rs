//! `sbc-top` — a refreshing console view over a live run's telemetry.
//!
//! Points at the JSON tail a `stream_bench --telemetry-out <path>` run
//! (or any embedder of `sbc_obs::timeline::Sampler`) rewrites
//! atomically every tick, and renders the classic `top` layout for a
//! streaming-coreset process: resident set and per-component allocator
//! attribution (live/peak bytes, alloc churn), ingest throughput from
//! counter deltas across the ring, the ladder prune's per-role
//! hit-rates, and the store kill taxonomy.
//!
//! When the producer is `sbc-serve` (or any embedder of
//! `sbc_obs::svc`), the `svc.*` counters in the tail light up a
//! service view: live/evicted tenant gauges, spill bytes, admission
//! refusals, restore storms, and a per-tenant table (ops/s over the
//! ring window, errors, bytes, p99 latency, lifecycle state).
//!
//! The file is re-read on every refresh — `sbc-top` holds no state
//! between frames, so it can attach to a run that is already in flight
//! and survives the producer restarting. A missing or half-written
//! file renders as "waiting" rather than an error (the sampler's
//! tmp+rename writes make the half-written case rare).
//!
//! Usage: `sbc-top [--refresh <ms>] [--once] <telemetry.json>`
//!
//! `--once` renders a single frame without clearing the screen and
//! exits non-zero if the file is missing or malformed — the CI smoke
//! mode.

use sbc_obs::json::JsonValue;
use std::fmt::Write as _;

/// One decoded sample: the fields the view needs.
struct Frame {
    elapsed_ms: u64,
    rss_bytes: u64,
    counters: Vec<(String, u64)>,
}

impl Frame {
    fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sums counters matching `prefix…{suffix}` (prune hit accounting).
    fn counter_sum(&self, prefix: &str, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix) && n.ends_with(suffix))
            .map(|(_, v)| *v)
            .sum()
    }
}

fn decode_frame(sample: &JsonValue) -> Option<Frame> {
    let counters = sample
        .get("counters")?
        .as_object()?
        .iter()
        .filter_map(|(n, v)| v.as_u64().map(|v| (n.clone(), v)))
        .collect();
    Some(Frame {
        elapsed_ms: sample.get("elapsed_ms")?.as_u64()?,
        rss_bytes: sample.get("rss_bytes")?.as_u64()?,
        counters,
    })
}

fn human(bytes: u64) -> String {
    sbc_streaming::human_bytes(bytes as usize)
}

/// Renders one frame from the parsed timeline document, or `None` when
/// the document doesn't look like `sbc-timeline-v1` output.
fn render(doc: &JsonValue, path: &str) -> Option<String> {
    let schema = doc.get("schema")?.as_str()?;
    let samples = doc.get("samples")?.as_array()?;
    let latest = decode_frame(samples.last()?)?;
    let oldest = decode_frame(samples.first()?)?;
    let cadence = doc
        .get("cadence_ms")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let taken = doc.get("taken").and_then(JsonValue::as_u64).unwrap_or(0);
    let tracking = doc
        .get("alloc_tracking")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "sbc-top — {path} ({schema}, {taken} samples @ {cadence} ms)"
    );
    let rss_peak = samples
        .iter()
        .filter_map(|s| s.get("rss_bytes").and_then(JsonValue::as_u64))
        .max()
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "uptime {:>8.1}s   rss {:>10} (peak {:>10} over ring)",
        latest.elapsed_ms as f64 / 1000.0,
        human(latest.rss_bytes),
        human(rss_peak),
    );

    // Throughput: counter deltas across the retained ring.
    let dt = (latest.elapsed_ms.saturating_sub(oldest.elapsed_ms)) as f64 / 1000.0;
    let rate = |name: &str| {
        let d = latest.counter(name).saturating_sub(oldest.counter(name));
        if dt > 0.0 {
            d as f64 / dt
        } else {
            0.0
        }
    };
    let ins = rate("stream.ingest.ops_inserted");
    let del = rate("stream.ingest.ops_deleted");
    let _ = writeln!(
        out,
        "ingest {:>12.0} ops/s ({ins:.0} ins/s, {del:.0} del/s over {dt:.1}s window)",
        ins + del,
    );

    // Ladder prune hit-rates per store role (accepted / decided).
    out.push_str("prune  ");
    for role in ["h", "hp", "hhat"] {
        let prefix = format!("stream.ingest.prune.{role}.");
        let acc = latest.counter_sum(&prefix, ".accepted");
        let prn = latest.counter_sum(&prefix, ".pruned");
        let pct = if acc + prn > 0 {
            acc as f64 / (acc + prn) as f64 * 100.0
        } else {
            0.0
        };
        let _ = write!(out, "{role}: {pct:>5.1}% accepted   ");
    }
    out.push('\n');

    // Store fleet and kill taxonomy (the SpaceReport snake_case names).
    let _ = writeln!(
        out,
        "stores {:>8} spawned   kills: {} runaway_kill, {} sketch_overflow",
        latest.counter("stream.store.spawned"),
        latest.counter("stream.store.kill.runaway_kill"),
        latest.counter("stream.store.kill.sketch_overflow"),
    );

    // Per-component allocator attribution.
    if tracking {
        let _ = writeln!(
            out,
            "\n{:<12} {:>12} {:>12} {:>12} {:>12}",
            "COMPONENT", "LIVE", "PEAK", "ALLOCS", "DEALLOCS"
        );
        if let Some(components) = samples
            .last()
            .and_then(|s| s.get("alloc"))
            .and_then(|a| a.get("components"))
            .and_then(JsonValue::as_object)
        {
            for (name, st) in components {
                let g = |k: &str| st.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{name:<12} {:>12} {:>12} {:>12} {:>12}",
                    human(g("live_bytes")),
                    human(g("peak_bytes")),
                    g("allocs"),
                    g("deallocs"),
                );
            }
        }
    } else {
        out.push_str("\nallocator attribution off (rebuild with --features obs-alloc)\n");
    }

    render_service(&mut out, &latest, &oldest, dt);
    Some(out)
}

/// The service-plane view: gauges plus a per-tenant table, parsed from
/// the `svc.*` counters a serving-tier producer publishes into the
/// timeline. Silent when the producer exports no service metrics.
fn render_service(out: &mut String, latest: &Frame, oldest: &Frame, dt: f64) {
    if !latest.counters.iter().any(|(n, _)| n.starts_with("svc.")) {
        return;
    }
    let _ = writeln!(
        out,
        "\nservice  {} live / {} evicted tenants   spill {}   rejects {}   sheds {}",
        latest.counter("svc.tenants.live"),
        latest.counter("svc.tenants.evicted"),
        human(latest.counter("svc.spill.bytes")),
        latest.counter("svc.admission.rejects"),
        latest.counter("svc.admission.sheds"),
    );
    let _ = writeln!(
        out,
        "         restores {} ({} storms)   slow-request dumps {}   tracked {} (+{} untracked)",
        latest.counter("svc.restores"),
        latest.counter("svc.restore.storms"),
        latest.counter("svc.slow.dumps"),
        latest.counter("svc.tenants.tracked"),
        latest.counter("svc.tenants.untracked"),
    );

    // Per-tenant rows out of the sampled `svc.tenant.<id>.<field>`
    // counters; ops/s is a delta across the retained ring window.
    let mut rows: Vec<(u64, u64)> = latest
        .counters
        .iter()
        .filter_map(|(n, ops)| {
            let rest = n.strip_prefix("svc.tenant.")?;
            let (id, field) = rest.split_once('.')?;
            (field == "ops").then_some(())?;
            Some((id.parse::<u64>().ok()?, *ops))
        })
        .collect();
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let _ = writeln!(
        out,
        "\n{:<10} {:>10} {:>8} {:>12} {:>12} {:>8}",
        "TENANT", "OPS/S", "ERRORS", "BYTES", "P99", "STATE"
    );
    for (id, ops) in rows.iter().take(16) {
        let field = |f: &str| format!("svc.tenant.{id}.{f}");
        let d = ops.saturating_sub(oldest.counter(&field("ops")));
        let ops_per_sec = if dt > 0.0 { d as f64 / dt } else { 0.0 };
        let state = sbc_obs::svc::TenantState::from_code(latest.counter(&field("state")))
            .map_or("?", sbc_obs::svc::TenantState::as_str);
        let _ = writeln!(
            out,
            "{id:<10} {ops_per_sec:>10.1} {:>8} {:>12} {:>9.2}ms {state:>8}",
            latest.counter(&field("errors")),
            human(latest.counter(&field("bytes"))),
            latest.counter(&field("p99_ns")) as f64 / 1e6,
        );
    }
}

fn main() {
    let mut once = false;
    let mut refresh_ms = 1000u64;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--refresh" => {
                refresh_ms = args
                    .next()
                    .expect("--refresh needs a cadence in ms")
                    .parse()
                    .expect("--refresh takes a positive integer");
                assert!(refresh_ms > 0, "--refresh takes a positive integer");
            }
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            p => path = Some(p.to_string()),
        }
    }
    let path = path.unwrap_or_else(|| {
        eprintln!("usage: sbc-top [--refresh <ms>] [--once] <telemetry.json>");
        std::process::exit(2);
    });

    loop {
        let frame = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| JsonValue::parse(&text).ok())
            .and_then(|doc| render(&doc, &path));
        if once {
            match frame {
                Some(view) => {
                    print!("{view}");
                    return;
                }
                None => {
                    eprintln!("sbc-top: {path} is missing or not a telemetry timeline");
                    std::process::exit(1);
                }
            }
        }
        // ANSI clear + home, like top(1); a missing file just waits.
        print!("\x1b[2J\x1b[H");
        match frame {
            Some(view) => print!("{view}"),
            None => println!("sbc-top: waiting for {path} …"),
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(refresh_ms));
    }
}
