//! Guards `BENCH_streaming.json` against regressions and schema drift.
//!
//! Compares a freshly generated report against the committed baseline
//! and exits non-zero when
//!
//! * the fresh report violates the expected schema (version, required
//!   sections, per-path fields), or
//! * a machine-independent throughput ratio (`speedup_vs_per_op` of the
//!   batched paths, or the SIMD-vs-scalar `kernel_speedup`) regressed
//!   by more than the tolerance (15%), or
//! * memory regressed: the telemetry section's `peak_bytes_per_point`
//!   (peak measured bytes over the canonical 4k-point robustness run,
//!   per point — deterministic, so it gates as tightly as the speed
//!   ratios) grew past the baseline by more than the tolerance.
//!
//! Absolute ops/sec are *not* compared — they vary with the host — only
//! the relative speedups of the batched paths over the per-op reference
//! path measured in the same process.
//!
//! With `--prom <file>` the guard also validates a Prometheus
//! text-exposition artifact (e.g. the `.prom` sibling a `stream_bench
//! --telemetry-out` run leaves behind) via
//! [`sbc_obs::timeline::validate_prometheus`].
//!
//! Usage: `cargo run -p sbc-bench --bin bench_guard -- <fresh.json>
//! [<baseline.json>] [--prom <file>]` (the baseline defaults to the
//! committed `BENCH_streaming.json`).

use sbc_obs::json::JsonValue;

/// Maximum tolerated relative drop in a speedup ratio.
const TOLERANCE: f64 = 0.15;

/// Maximum tolerated service-observability overhead: with the `obs`
/// feature compiled in, the instrumented drive must keep at least this
/// fraction of the uninstrumented drive's throughput (<2% overhead).
const OBS_OVERHEAD_FLOOR: f64 = 0.98;

/// Absolute ceiling on the migration cutover's p99. Unlike the other
/// latency fields this IS gated despite being host truth: a cutover is
/// a handful of in-memory round trips over a frozen snapshot, so even
/// a slow CI box clears 250ms by orders of magnitude — and a protocol
/// bug that makes cutover wait on something (a re-ship, a retry storm)
/// blows straight past it.
const CUTOVER_P99_CEILING_NS: f64 = 250_000_000.0;

/// Schema the fresh report must satisfy.
const SCHEMA_VERSION: u64 = 8;
const REQUIRED_TOP: [&str; 15] = [
    "schema_version",
    "git_commit",
    "generated_at",
    "workload",
    "n",
    "groups",
    "kernels",
    "sharding",
    "robustness",
    "telemetry",
    "trace",
    "metrics",
    "serving",
    "service_obs",
    "migration",
];
/// Numeric fields of the `serving` section (`serve_bench` output).
const SERVING_NUMERIC: [&str; 18] = [
    "protocol_version",
    "tenants",
    "ops_per_tenant",
    "batch",
    "shards",
    "total_ops",
    "aggregate_ops_per_sec",
    "single_tenant_ops_per_sec",
    "multi_tenant_efficiency",
    "p50_admission_ns",
    "p99_admission_ns",
    "p999_admission_ns",
    "admission_samples",
    "peak_bytes_per_tenant",
    "identity_checks",
    "evictions",
    "restores",
    "overloaded",
];
/// Numeric fields of the `service_obs` section (`serve_bench` output).
const SERVICE_OBS_NUMERIC: [&str; 8] = [
    "metrics_disabled_ops_per_sec",
    "metrics_enabled_ops_per_sec",
    "overhead_ratio",
    "p50_request_ns",
    "p99_request_ns",
    "p999_request_ns",
    "request_samples",
    "slow_dumps",
];
/// Numeric fields of the `migration` section (`serve_bench` output).
const MIGRATION_NUMERIC: [&str; 14] = [
    "fleet_servers",
    "tenants",
    "chunk_bytes",
    "migrations",
    "drained",
    "cutovers",
    "chunks",
    "replayed_ops",
    "replay_queue_peak",
    "replay_queue_max_ops",
    "aborts",
    "p50_cutover_ns",
    "p99_cutover_ns",
    "identity_checks",
];
const GROUPS: [&str; 2] = ["insert_only", "mixed_deletion_heavy"];
const PATHS: [&str; 3] = ["per_op", "batched", "batched_parallel"];
const PATH_FIELDS: [&str; 3] = ["ops_per_sec", "seconds", "speedup_vs_per_op"];
const TRACE_FIELDS: [&str; 5] = [
    "feature_enabled",
    "buffer_events",
    "total_events",
    "dropped",
    "threads",
];

fn load(path: &str) -> JsonValue {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    JsonValue::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_guard: FAIL: {msg}");
    std::process::exit(1);
}

/// Checks the fresh report's shape; returns an error string on drift.
fn check_schema(doc: &JsonValue, path: &str) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{path}: missing schema_version"))?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "{path}: schema_version {version}, expected {SCHEMA_VERSION}"
        ));
    }
    for key in REQUIRED_TOP {
        if doc.get(key).is_none() {
            return Err(format!("{path}: missing top-level section \"{key}\""));
        }
    }
    for key in TRACE_FIELDS {
        if doc.get("trace").and_then(|t| t.get(key)).is_none() {
            return Err(format!("{path}: trace section missing \"{key}\""));
        }
    }
    let groups = doc.get("groups").unwrap();
    for group in GROUPS {
        let g = groups
            .get(group)
            .ok_or_else(|| format!("{path}: missing group \"{group}\""))?;
        for p in PATHS {
            let pj = g
                .get(p)
                .ok_or_else(|| format!("{path}: group {group} missing path \"{p}\""))?;
            for field in PATH_FIELDS {
                if pj.get(field).and_then(JsonValue::as_f64).is_none() {
                    return Err(format!("{path}: {group}.{p} missing numeric \"{field}\""));
                }
            }
        }
    }
    if doc
        .get("robustness")
        .and_then(|r| r.get("space_report"))
        .is_none()
    {
        return Err(format!("{path}: robustness section missing space_report"));
    }
    // Kernels: scalar vs SIMD on the same host; the ratio is gated.
    let kernels = doc.get("kernels").unwrap();
    for side in ["scalar", "simd"] {
        for field in ["ops_per_sec", "seconds"] {
            if kernels
                .get(side)
                .and_then(|s| s.get(field))
                .and_then(JsonValue::as_f64)
                .is_none()
            {
                return Err(format!(
                    "{path}: kernels.{side} missing numeric \"{field}\""
                ));
            }
        }
    }
    if kernels
        .get("kernel_speedup")
        .and_then(JsonValue::as_f64)
        .is_none()
    {
        return Err(format!(
            "{path}: kernels section missing numeric \"kernel_speedup\""
        ));
    }
    // Sharding carries wall-clock comparisons that are deliberately NOT
    // gated (the speedup depends on the host's core count — see
    // threads_available); only its shape is pinned.
    let sharding = doc.get("sharding").unwrap();
    for key in ["shards", "threads_available", "speedup_vs_single"] {
        if sharding.get(key).and_then(JsonValue::as_f64).is_none() {
            return Err(format!(
                "{path}: sharding section missing numeric \"{key}\""
            ));
        }
    }
    for side in ["single_shard", "sharded"] {
        for field in ["seconds", "ops_per_sec"] {
            if sharding
                .get(side)
                .and_then(|s| s.get(field))
                .and_then(JsonValue::as_f64)
                .is_none()
            {
                return Err(format!(
                    "{path}: sharding.{side} missing numeric \"{field}\""
                ));
            }
        }
    }
    for key in ["shards", "total", "max_per_shard"] {
        if sharding
            .get("space_report")
            .and_then(|s| s.get(key))
            .is_none()
        {
            return Err(format!("{path}: sharding.space_report missing \"{key}\""));
        }
    }
    // Telemetry: memory-truth reconciliation plus the sampler/allocator
    // overhead figures. `alloc_tracking` varies with the feature matrix
    // (bool), everything else is numeric.
    let telemetry = doc.get("telemetry").unwrap();
    if telemetry
        .get("alloc_tracking")
        .and_then(JsonValue::as_bool)
        .is_none()
    {
        return Err(format!(
            "{path}: telemetry section missing boolean \"alloc_tracking\""
        ));
    }
    for key in ["cadence_ms", "samples", "rss_peak_bytes"] {
        if telemetry.get(key).and_then(JsonValue::as_f64).is_none() {
            return Err(format!(
                "{path}: telemetry section missing numeric \"{key}\""
            ));
        }
    }
    if telemetry
        .get("alloc")
        .and_then(|a| a.get("components"))
        .is_none()
    {
        return Err(format!(
            "{path}: telemetry.alloc missing per-component attribution"
        ));
    }
    for key in [
        "measured_bytes",
        "peak_measured_bytes",
        "expected_sketch_bytes",
        "nominal_sketch_bytes",
        "nominal_to_measured_ratio",
        "peak_bytes_per_point",
    ] {
        if telemetry
            .get("space")
            .and_then(|s| s.get(key))
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!("{path}: telemetry.space missing numeric \"{key}\""));
        }
    }
    for key in ["alloc_pair_ns", "alloc_idle_pct", "sampling_pct"] {
        if telemetry
            .get("overhead")
            .and_then(|o| o.get(key))
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!(
                "{path}: telemetry.overhead missing numeric \"{key}\""
            ));
        }
    }
    // Serving (v6): the multi-tenant service tier's load-generator
    // report. Identity is a hard boolean; the latency percentiles are
    // schema-checked but not ratio-gated (absolute ns is host truth).
    let serving = doc.get("serving").unwrap();
    for key in SERVING_NUMERIC {
        if serving.get(key).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("{path}: serving section missing numeric \"{key}\""));
        }
    }
    if serving
        .get("coresets_bit_identical")
        .and_then(JsonValue::as_bool)
        .is_none()
    {
        return Err(format!(
            "{path}: serving section missing boolean \"coresets_bit_identical\""
        ));
    }
    for key in ["reject_overloaded", "shed_evictions"] {
        if serving
            .get("overload_drill")
            .and_then(|d| d.get(key))
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!(
                "{path}: serving.overload_drill missing numeric \"{key}\""
            ));
        }
    }
    if serving
        .get("faults")
        .and_then(|f| f.get("profile"))
        .and_then(JsonValue::as_str)
        .is_none()
    {
        return Err(format!("{path}: serving.faults missing string \"profile\""));
    }
    for key in ["drops", "dups", "retries"] {
        if serving
            .get("faults")
            .and_then(|f| f.get(key))
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!("{path}: serving.faults missing numeric \"{key}\""));
        }
    }
    // Service observability (v7): the instrumentation-overhead
    // comparison and the SLO-histogram percentiles.
    let service_obs = doc.get("service_obs").unwrap();
    if service_obs
        .get("feature_enabled")
        .and_then(JsonValue::as_bool)
        .is_none()
    {
        return Err(format!(
            "{path}: service_obs section missing boolean \"feature_enabled\""
        ));
    }
    for key in SERVICE_OBS_NUMERIC {
        if service_obs.get(key).and_then(JsonValue::as_f64).is_none() {
            return Err(format!(
                "{path}: service_obs section missing numeric \"{key}\""
            ));
        }
    }
    // Migration (v8): the 3-server fleet's live-migration report.
    let migration = doc.get("migration").unwrap();
    for key in MIGRATION_NUMERIC {
        if migration.get(key).and_then(JsonValue::as_f64).is_none() {
            return Err(format!(
                "{path}: migration section missing numeric \"{key}\""
            ));
        }
    }
    if migration
        .get("coresets_bit_identical")
        .and_then(JsonValue::as_bool)
        .is_none()
    {
        return Err(format!(
            "{path}: migration section missing boolean \"coresets_bit_identical\""
        ));
    }
    if migration
        .get("faults")
        .and_then(|f| f.get("profile"))
        .and_then(JsonValue::as_str)
        .is_none()
    {
        return Err(format!(
            "{path}: migration.faults missing string \"profile\""
        ));
    }
    Ok(())
}

/// A numeric leaf of the `migration` section, if present.
fn migration_num(doc: &JsonValue, key: &str) -> Option<f64> {
    doc.get("migration")?.get(key)?.as_f64()
}

/// A numeric leaf of the `serving` section, if present.
fn serving_num(doc: &JsonValue, key: &str) -> Option<f64> {
    doc.get("serving")?.get(key)?.as_f64()
}

/// `telemetry.space.peak_bytes_per_point` of a report, if present.
fn peak_bytes_per_point(doc: &JsonValue) -> Option<f64> {
    doc.get("telemetry")?
        .get("space")?
        .get("peak_bytes_per_point")?
        .as_f64()
}

fn speedup(doc: &JsonValue, group: &str, path: &str) -> Option<f64> {
    doc.get("groups")?
        .get(group)?
        .get(path)?
        .get("speedup_vs_per_op")?
        .as_f64()
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut prom_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--prom" => {
                prom_path = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--prom needs a file path")),
                );
            }
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag}")),
            p => positional.push(p.to_string()),
        }
    }
    let fresh_path = positional.first().cloned().unwrap_or_else(|| {
        fail("usage: bench_guard <fresh.json> [<baseline.json>] [--prom <file>]")
    });
    let baseline_path = positional
        .get(1)
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_streaming.json", env!("CARGO_MANIFEST_DIR")));

    let fresh = load(&fresh_path);
    let baseline = load(&baseline_path);

    if let Err(msg) = check_schema(&fresh, &fresh_path) {
        fail(&format!("schema drift — {msg}"));
    }

    // The per-op path is the shared denominator, so regressions in the
    // batched paths show up here no matter how fast the host is.
    let mut checked = 0usize;
    for group in GROUPS {
        for path in ["batched", "batched_parallel"] {
            let Some(base) = speedup(&baseline, group, path) else {
                // A pre-v3 baseline without this ratio cannot gate it.
                println!("bench_guard: note: baseline lacks {group}.{path}, skipping");
                continue;
            };
            let new = speedup(&fresh, group, path)
                .unwrap_or_else(|| fail(&format!("fresh report lacks {group}.{path}")));
            let floor = base * (1.0 - TOLERANCE);
            checked += 1;
            if new < floor {
                fail(&format!(
                    "throughput regression — {group}.{path} speedup_vs_per_op {new:.3} \
                     is below {floor:.3} (baseline {base:.3} − {:.0}%)",
                    TOLERANCE * 100.0
                ));
            }
            println!("bench_guard: {group}.{path}: {new:.3}x vs baseline {base:.3}x — ok");
        }
    }
    // The SIMD kernel must stay ahead of the scalar one measured in the
    // same process — a machine-independent ratio like the ones above.
    match baseline
        .get("kernels")
        .and_then(|k| k.get("kernel_speedup"))
        .and_then(JsonValue::as_f64)
    {
        None => {
            // A pre-v4 baseline without the section cannot gate it.
            println!("bench_guard: note: baseline lacks kernels.kernel_speedup, skipping");
        }
        Some(base) => {
            let new = fresh
                .get("kernels")
                .and_then(|k| k.get("kernel_speedup"))
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| fail("fresh report lacks kernels.kernel_speedup"));
            let floor = base * (1.0 - TOLERANCE);
            checked += 1;
            if new < floor {
                fail(&format!(
                    "kernel regression — kernel_speedup {new:.3} is below {floor:.3} \
                     (baseline {base:.3} − {:.0}%)",
                    TOLERANCE * 100.0
                ));
            }
            println!("bench_guard: kernels.kernel_speedup: {new:.3}x vs baseline {base:.3}x — ok");
        }
    }
    // Memory gate: peak measured bytes per point on the canonical
    // robustness run. Deterministic given logical state (the space
    // report never reads transient allocator capacities), so it is
    // host-independent like the ratios above — but it gates *upward*
    // drift, not downward.
    match peak_bytes_per_point(&baseline) {
        None => {
            // A pre-v5 baseline without the section cannot gate it.
            println!(
                "bench_guard: note: baseline lacks telemetry.space.peak_bytes_per_point, skipping"
            );
        }
        Some(base) => {
            let new = peak_bytes_per_point(&fresh)
                .unwrap_or_else(|| fail("fresh report lacks telemetry.space.peak_bytes_per_point"));
            let ceiling = base * (1.0 + TOLERANCE);
            checked += 1;
            if new > ceiling {
                fail(&format!(
                    "memory regression — peak_bytes_per_point {new:.1} exceeds {ceiling:.1} \
                     (baseline {base:.1} + {:.0}%)",
                    TOLERANCE * 100.0
                ));
            }
            println!(
                "bench_guard: telemetry.space.peak_bytes_per_point: {new:.1} vs baseline {base:.1} — ok"
            );
        }
    }
    // Serving gates. Identity is unconditional: a fresh report claiming
    // divergent coresets fails no matter what the baseline says.
    if fresh
        .get("serving")
        .and_then(|s| s.get("coresets_bit_identical"))
        .and_then(JsonValue::as_bool)
        != Some(true)
    {
        fail("serving regression — coresets_bit_identical must be true");
    }
    println!("bench_guard: serving.coresets_bit_identical: true — ok");
    // Multiplexing efficiency is a same-process ratio (N interleaved
    // tenants vs one), gated downward like the speedups above.
    match serving_num(&baseline, "multi_tenant_efficiency") {
        None => {
            // A pre-v6 baseline without the section cannot gate it.
            println!("bench_guard: note: baseline lacks serving.multi_tenant_efficiency, skipping");
        }
        Some(base) => {
            let new = serving_num(&fresh, "multi_tenant_efficiency")
                .unwrap_or_else(|| fail("fresh report lacks serving.multi_tenant_efficiency"));
            let floor = base * (1.0 - TOLERANCE);
            checked += 1;
            if new < floor {
                fail(&format!(
                    "serving regression — multi_tenant_efficiency {new:.3} is below {floor:.3} \
                     (baseline {base:.3} − {:.0}%)",
                    TOLERANCE * 100.0
                ));
            }
            println!(
                "bench_guard: serving.multi_tenant_efficiency: {new:.3} vs baseline {base:.3} — ok"
            );
        }
    }
    // Per-tenant peak footprint is deterministic given the schedule, so
    // it gates upward drift like peak_bytes_per_point.
    match serving_num(&baseline, "peak_bytes_per_tenant") {
        None => {
            println!("bench_guard: note: baseline lacks serving.peak_bytes_per_tenant, skipping");
        }
        Some(base) => {
            let new = serving_num(&fresh, "peak_bytes_per_tenant")
                .unwrap_or_else(|| fail("fresh report lacks serving.peak_bytes_per_tenant"));
            let ceiling = base * (1.0 + TOLERANCE);
            checked += 1;
            if new > ceiling {
                fail(&format!(
                    "serving memory regression — peak_bytes_per_tenant {new:.1} exceeds \
                     {ceiling:.1} (baseline {base:.1} + {:.0}%)",
                    TOLERANCE * 100.0
                ));
            }
            println!(
                "bench_guard: serving.peak_bytes_per_tenant: {new:.1} vs baseline {base:.1} — ok"
            );
        }
    }
    // Admission latency is schema-pinned, sanity-checked, not gated.
    if serving_num(&fresh, "p99_admission_ns").is_none_or(|p99| p99 <= 0.0) {
        fail("fresh report lacks a positive serving.p99_admission_ns");
    }
    // Observability overhead: an instrumented drive vs an uninstrumented
    // one in the same process — a machine-independent ratio. Only gated
    // when the `obs` feature was compiled in (otherwise both drives ran
    // the same no-op build and the ratio is pure noise around 1.0).
    let obs_on = fresh
        .get("service_obs")
        .and_then(|s| s.get("feature_enabled"))
        .and_then(JsonValue::as_bool)
        == Some(true);
    if obs_on {
        let ratio = fresh
            .get("service_obs")
            .and_then(|s| s.get("overhead_ratio"))
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| fail("fresh report lacks service_obs.overhead_ratio"));
        checked += 1;
        if ratio < OBS_OVERHEAD_FLOOR {
            fail(&format!(
                "observability overhead — service_obs.overhead_ratio {ratio:.3} is below \
                 {OBS_OVERHEAD_FLOOR:.2} (instrumented serving lost more than {:.0}% throughput)",
                (1.0 - OBS_OVERHEAD_FLOOR) * 100.0
            ));
        }
        println!(
            "bench_guard: service_obs.overhead_ratio: {ratio:.3} (floor {OBS_OVERHEAD_FLOOR:.2}) — ok"
        );
    } else {
        println!("bench_guard: note: service_obs.feature_enabled false, overhead not gated");
    }
    // Migration gates (v8). Identity after live migration is the
    // protocol's whole correctness claim — unconditional, like the
    // serving identity bit.
    if fresh
        .get("migration")
        .and_then(|m| m.get("coresets_bit_identical"))
        .and_then(JsonValue::as_bool)
        != Some(true)
    {
        fail("migration regression — coresets_bit_identical must be true");
    }
    println!("bench_guard: migration.coresets_bit_identical: true — ok");
    // A migration report with no committed cutovers proved nothing.
    if migration_num(&fresh, "cutovers").is_none_or(|c| c < 1.0) {
        fail("migration regression — report carries no committed cutovers");
    }
    // Cutover tail: absolute ceiling (see CUTOVER_P99_CEILING_NS).
    let p99 = migration_num(&fresh, "p99_cutover_ns")
        .unwrap_or_else(|| fail("fresh report lacks migration.p99_cutover_ns"));
    checked += 1;
    if p99 > CUTOVER_P99_CEILING_NS {
        fail(&format!(
            "migration regression — p99_cutover_ns {p99:.0} exceeds the \
             {CUTOVER_P99_CEILING_NS:.0}ns ceiling"
        ));
    }
    println!(
        "bench_guard: migration.p99_cutover_ns: {p99:.0} (ceiling {CUTOVER_P99_CEILING_NS:.0}) — ok"
    );
    // The replay queue must respect its own advertised bound: a peak
    // past replay_queue_max_ops means the overflow refusal is broken.
    let peak = migration_num(&fresh, "replay_queue_peak")
        .unwrap_or_else(|| fail("fresh report lacks migration.replay_queue_peak"));
    let bound = migration_num(&fresh, "replay_queue_max_ops")
        .unwrap_or_else(|| fail("fresh report lacks migration.replay_queue_max_ops"));
    checked += 1;
    if peak > bound {
        fail(&format!(
            "migration regression — replay_queue_peak {peak:.0} exceeds its bound {bound:.0}"
        ));
    }
    println!("bench_guard: migration.replay_queue_peak: {peak:.0} (bound {bound:.0}) — ok");
    if checked == 0 {
        fail("baseline exposed no comparable speedup ratios");
    }
    // Optional Prometheus artifact validation (text exposition 0.0.4).
    if let Some(pp) = prom_path {
        let text = std::fs::read_to_string(&pp)
            .unwrap_or_else(|e| fail(&format!("cannot read {pp}: {e}")));
        match sbc_obs::timeline::validate_prometheus(&text) {
            Ok(samples) => println!("bench_guard: {pp}: valid exposition ({samples} samples)"),
            Err(msg) => fail(&format!("{pp}: invalid Prometheus exposition — {msg}")),
        }
    }
    println!(
        "bench_guard: PASS ({checked} ratios within {:.0}%)",
        TOLERANCE * 100.0
    );
}
