//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! The paper (a theory brief announcement) has no empirical section, so
//! the suite S1, E1–E10, E12 is derived from its theorem statements —
//! the mapping is documented in DESIGN.md §4 (E11, the fault-profile
//! sweep, lives in `stream_bench`). Run all experiments or a subset:
//!
//! ```sh
//! cargo run --release -p sbc-bench --bin experiments            # all
//! cargo run --release -p sbc-bench --bin experiments -- e1 e4   # subset
//! cargo run --release -p sbc-bench --bin experiments -- --quick # smaller sizes
//! ```
//!
//! With the `obs` feature, `--metrics-out <path>` writes the metrics
//! snapshot accumulated across the selected experiments as JSON,
//! `--trace-out <path>` exports the flight-recorder timeline as Chrome
//! `trace_event` JSON (plus a `.folded` flamegraph file next to it),
//! and `--trace-buffer-events <N>` sizes the per-thread ring buffers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::{fmt, fmt_bytes, quality, weighted_summary_quality, Table, Workload};
use sbc_clustering::baselines::{sensitivity_coreset, uniform_coreset};
use sbc_clustering::capacitated::capacitated_lloyd_raw;
use sbc_clustering::cost::capacitated_cost;
use sbc_clustering::three_pass::ThreePassBaseline;
use sbc_core::assign::{build_assignment_oracle, reoptimize_fixed_sizes};
use sbc_core::halfspace::{canonicalize_assignment, AssignmentHalfspaces};
use sbc_core::{build_coreset, ConstantsProfile, CoresetParams};
use sbc_distributed::DistributedCoreset;
use sbc_flow::rounding::integral_capacitated_assignment;
use sbc_geometry::dataset::{split_round_robin, two_phase_dynamic};
use sbc_geometry::GridParams;
use sbc_streaming::model::{insert_delete_stream, insertion_stream};
use sbc_streaming::storing::{Storing, StoringConfig};
use sbc_streaming::{StreamCoresetBuilder, StreamParams};
use std::time::Instant;

struct Scale {
    n_quality: usize,
    n_scaling: Vec<usize>,
    n_time: Vec<usize>,
    n_stream: Vec<usize>,
    machines: Vec<usize>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Flags that take a value; their value token is not an experiment id.
    const VALUE_FLAGS: [&str; 3] = ["--metrics-out", "--trace-out", "--trace-buffer-events"];
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        })
    };
    let metrics_out = flag_value("--metrics-out");
    let trace_out = flag_value("--trace-out");
    let trace_buffer: Option<usize> = flag_value("--trace-buffer-events").map(|s| {
        let n = s
            .parse()
            .expect("--trace-buffer-events takes a positive integer");
        assert!(n > 0, "--trace-buffer-events takes a positive integer");
        n
    });
    let mut skip_next = false;
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if VALUE_FLAGS.contains(&a.as_str()) {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let run = |id: &str| wanted.is_empty() || wanted.contains(&id);
    sbc_obs::set_enabled(true); // no-op unless built with the obs feature
    if let Some(n) = trace_buffer {
        sbc_obs::trace::set_capacity(n);
    }
    if trace_out.is_some() {
        sbc_obs::trace::set_enabled(true); // likewise a no-op without `obs`
    }

    let scale = if quick {
        Scale {
            n_quality: 4000,
            n_scaling: vec![4000, 8000],
            n_time: vec![8000, 32_000],
            n_stream: vec![4000, 16_000],
            machines: vec![2, 4, 8],
        }
    } else {
        Scale {
            // Sized for a single-core CI-class machine: the dominant cost
            // is exact min-cost-flow evaluation on the *full* data, which
            // only the quality experiments need.
            n_quality: 4000,
            n_scaling: vec![8000, 32_000, 128_000],
            n_time: vec![8000, 32_000, 128_000, 512_000],
            n_stream: vec![4000, 16_000, 64_000],
            machines: vec![2, 4, 8, 16],
        }
    };

    println!("# Streaming Balanced Clustering — experiment harness");
    println!(
        "(profile: {}, see EXPERIMENTS.md for the index)\n",
        if quick { "quick" } else { "full" }
    );

    if run("s1") {
        s1_separability();
    }
    if run("e1") {
        e1_coreset_quality(&scale);
    }
    if run("e2") {
        e2_size_scaling(&scale);
    }
    if run("e3") {
        e3_build_time(&scale);
    }
    if run("e4") {
        e4_streaming_space(&scale);
    }
    if run("e5") {
        e5_streaming_vs_offline(&scale);
    }
    if run("e6") {
        e6_distributed(&scale);
    }
    if run("e7") {
        e7_end_to_end(&scale);
    }
    if run("e8") {
        e8_three_pass_baseline(&scale);
    }
    if run("e9") {
        e9_ablations(&scale);
    }
    if run("e10") {
        e10_assignment_oracle(&scale);
    }
    if run("e12") {
        e12_shard_sweep(&scale);
    }

    if let Some(path) = metrics_out {
        let snapshot = sbc_obs::snapshot();
        std::fs::write(&path, snapshot.to_json().render_pretty())
            .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!(
            "wrote {path} ({} counters, {} histograms)",
            snapshot.counters.len(),
            snapshot.histograms.len()
        );
    }
    if let Some(tpath) = trace_out {
        sbc_obs::trace::set_enabled(false);
        let tsnap = sbc_obs::trace::snapshot();
        std::fs::write(&tpath, sbc_obs::trace::chrome_trace(&tsnap).render_pretty())
            .unwrap_or_else(|e| panic!("failed to write {tpath}: {e}"));
        let folded_path = format!("{}.folded", tpath.strip_suffix(".json").unwrap_or(&tpath));
        std::fs::write(&folded_path, sbc_obs::trace::folded_stacks(&tsnap))
            .unwrap_or_else(|e| panic!("failed to write {folded_path}: {e}"));
        println!(
            "wrote {tpath} + {folded_path} ({} events, {} dropped)",
            tsnap.total_events(),
            tsnap.dropped
        );
    }
}

fn default_params(k: usize, r: f64) -> CoresetParams {
    CoresetParams::builder(k, GridParams::from_log_delta(8, 2))
        .r(r)
        .build()
        .unwrap()
}

/// S1 — half-space separability of optimal capacitated assignments
/// (Lemma 3.8 / Figures 1 & 3).
fn s1_separability() {
    println!("## S1 — curved-half-space separability of optimal assignments\n");
    let gp = GridParams::from_log_delta(6, 2);
    let mut table = Table::new(&["r", "instances", "separable", "rate"]);
    for &r in &[1.0f64, 2.0] {
        let mut separable = 0;
        let trials = 60;
        for seed in 0..trials {
            // Footnote 4: points must have distinct coordinates.
            let mut pts = Workload::Gaussian.generate(gp, 24, 3, 1000 + seed);
            pts.sort();
            pts.dedup();
            let centers = Workload::Uniform.generate(gp, 3, 3, 2000 + seed);
            let cap = (pts.len() as f64 / 3.0).ceil() + (seed % 3) as f64;
            let Some(ia) = integral_capacitated_assignment(&pts, None, &centers, cap, r) else {
                continue;
            };
            let mut assign = ia.center_of;
            // §3.3: make the assignment optimal for its own size vector,
            // then break ties alphabetically — the preconditions of
            // Lemma 3.8's separability argument.
            reoptimize_fixed_sizes(&pts, &mut assign, &centers, r);
            canonicalize_assignment(&pts, &mut assign, &centers, r);
            let hs = AssignmentHalfspaces::from_assignment(&pts, &assign, &centers, r);
            if hs.is_valid_for(&pts, &assign) {
                separable += 1;
            }
        }
        table.row(vec![
            fmt(r),
            trials.to_string(),
            separable.to_string(),
            format!("{:.0}%", 100.0 * separable as f64 / trials as f64),
        ]);
    }
    table.print();
    println!("Paper prediction: 100% (Lemma 3.8; ties broken alphabetically).\n");
}

/// E1 — strong-coreset quality across workloads and r.
fn e1_coreset_quality(scale: &Scale) {
    println!("## E1 — coreset preserves capacitated cost (Thm 3.19 item 1)\n");
    let n = scale.n_quality;
    let mut table = Table::new(&[
        "workload",
        "r",
        "n",
        "|Q'|",
        "compress",
        "upper",
        "lower",
        "bound 1+eps",
    ]);
    for w in Workload::all() {
        for &r in &[1.0f64, 2.0] {
            let params = default_params(3, r);
            let pts = w.generate(params.grid, n, 3, 77);
            let mut rng = StdRng::seed_from_u64(7);
            let cs = match build_coreset(&pts, &params, &mut rng) {
                Ok(cs) => cs,
                Err(e) => {
                    table.row(vec![
                        w.name().into(),
                        fmt(r),
                        n.to_string(),
                        format!("FAIL: {e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                }
            };
            let q = quality(&pts, &cs, &params, 4, &[1.2, 2.0], 99);
            table.row(vec![
                w.name().into(),
                fmt(r),
                n.to_string(),
                cs.len().to_string(),
                format!("{:.1}x", n as f64 / cs.len() as f64),
                fmt(q.upper),
                fmt(q.lower),
                fmt(1.0 + params.eps),
            ]);
        }
    }
    table.print();
    println!("Shape check: upper/lower ratios stay near 1 (well under ~1+2eps),");
    println!("on the imbalanced workloads too — the capacitated-specific claim.\n");
}

/// E2 — coreset size scales poly(k, d, log Δ), independent of n.
fn e2_size_scaling(scale: &Scale) {
    println!("## E2 — coreset size: poly(k d log Δ), independent of n (Thm 3.19 item 2)\n");
    let mut table = Table::new(&["sweep", "value", "n", "|Q'|", "total weight"]);
    // n sweep at fixed parameters.
    for &n in &scale.n_scaling {
        let params = default_params(3, 2.0);
        let pts = Workload::Gaussian.generate(params.grid, n, 3, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let cs = build_coreset(&pts, &params, &mut rng).unwrap();
        table.row(vec![
            "n".into(),
            n.to_string(),
            n.to_string(),
            cs.len().to_string(),
            fmt(cs.total_weight()),
        ]);
    }
    // k sweep.
    for &k in &[2usize, 4, 8] {
        let params = default_params(k, 2.0);
        let n = scale.n_quality * 2;
        let pts = Workload::Gaussian.generate(params.grid, n, k, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let cs = build_coreset(&pts, &params, &mut rng).unwrap();
        table.row(vec![
            "k".into(),
            k.to_string(),
            n.to_string(),
            cs.len().to_string(),
            fmt(cs.total_weight()),
        ]);
    }
    // d sweep.
    for &d in &[2usize, 4, 6] {
        let gp = GridParams::from_log_delta(8, d);
        let params = CoresetParams::builder(3, gp).build().unwrap();
        let n = scale.n_quality * 2;
        let pts = Workload::Gaussian.generate(gp, n, 3, 7);
        let mut rng = StdRng::seed_from_u64(3);
        let cs = build_coreset(&pts, &params, &mut rng).unwrap();
        table.row(vec![
            "d".into(),
            d.to_string(),
            n.to_string(),
            cs.len().to_string(),
            fmt(cs.total_weight()),
        ]);
    }
    // L = log Δ sweep.
    for &l in &[6u32, 8, 10] {
        let gp = GridParams::from_log_delta(l, 2);
        let params = CoresetParams::builder(3, gp).build().unwrap();
        let n = scale.n_quality * 2;
        let pts = Workload::Gaussian.generate(gp, n, 3, 8);
        let mut rng = StdRng::seed_from_u64(4);
        let cs = build_coreset(&pts, &params, &mut rng).unwrap();
        table.row(vec![
            "log Δ".into(),
            l.to_string(),
            n.to_string(),
            cs.len().to_string(),
            fmt(cs.total_weight()),
        ]);
    }
    table.print();
    println!("Shape check: |Q'| roughly flat in n, grows with k, d and log Δ.\n");
}

/// E3 — near-linear construction time (Thm 3.19: O(nd log²(ndΔ))).
fn e3_build_time(scale: &Scale) {
    println!("## E3 — construction time is near-linear in n (Thm 3.19)\n");
    let mut table = Table::new(&["n", "build time", "ns/point", "|Q'|"]);
    for &n in &scale.n_time {
        let params = default_params(3, 2.0);
        let pts = Workload::Gaussian.generate(params.grid, n, 3, 9);
        let mut rng = StdRng::seed_from_u64(5);
        let t0 = Instant::now();
        let cs = build_coreset(&pts, &params, &mut rng).unwrap();
        let dt = t0.elapsed();
        table.row(vec![
            n.to_string(),
            format!("{dt:.2?}"),
            fmt(dt.as_nanos() as f64 / n as f64),
            cs.len().to_string(),
        ]);
    }
    table.print();
    println!("Shape check: ns/point roughly constant (log factors only).\n");
}

/// E4 — streaming space, with and without deletions; sketch sizes.
fn e4_streaming_space(scale: &Scale) {
    println!("## E4 — streaming space: poly(k d log Δ) summaries, deletions supported (Thm 4.5)\n");
    let mut table = Table::new(&[
        "n",
        "deleted",
        "ops",
        "hash state",
        "store state",
        "dead stores",
        "|Q'|",
    ]);
    for &n in &scale.n_stream {
        for &churn_frac in &[0.0f64, 0.5] {
            let params = default_params(3, 2.0);
            let churn = (n as f64 * churn_frac) as usize;
            let ds = two_phase_dynamic(params.grid, n, churn, 3, 11);
            let mut rng = StdRng::seed_from_u64(6);
            let ops = if churn == 0 {
                insertion_stream(&ds.kept)
            } else {
                insert_delete_stream(&ds.kept, &ds.churn, &mut rng)
            };
            let mut b = StreamCoresetBuilder::new(params, StreamParams::default(), &mut rng);
            b.process_all(&ops);
            let rep = b.space_report();
            let cs = b.finish();
            table.row(vec![
                n.to_string(),
                churn.to_string(),
                ops.len().to_string(),
                fmt_bytes(rep.hash_bytes as u64),
                fmt_bytes(rep.store_bytes as u64),
                rep.dead_stores.to_string(),
                cs.map(|c| c.len().to_string())
                    .unwrap_or_else(|e| format!("FAIL {e}")),
            ]);
        }
    }
    table.print();

    println!("Linear-sketch `Storing` sizes (the Lemma 4.2 space accounting —");
    println!("fixed at allocation, independent of the stream length):\n");
    let mut table = Table::new(&["alpha", "beta", "sketch bytes"]);
    for (alpha, beta) in [(64usize, 4usize), (256, 8), (1024, 16)] {
        let cfg = StoringConfig {
            alpha,
            beta,
            rows: 4,
        };
        table.row(vec![
            alpha.to_string(),
            beta.to_string(),
            fmt_bytes(Storing::nominal_sketch_bytes(&cfg) as u64),
        ]);
    }
    table.print();
    println!("Shape check: hash state constant; store state grows sublinearly in n");
    println!("(and is bounded for the sketch backend); deletions change nothing.\n");
}

/// E5 — streaming quality ≈ offline quality.
fn e5_streaming_vs_offline(scale: &Scale) {
    println!("## E5 — streaming coreset quality matches offline (Thm 4.5 item 1)\n");
    let n = scale.n_quality;
    let mut table = Table::new(&["path", "workload", "|Q'|", "upper", "lower"]);
    for w in [Workload::Gaussian, Workload::Imbalanced] {
        let params = default_params(3, 2.0);
        let pts = w.generate(params.grid, n, 3, 13);
        let mut rng = StdRng::seed_from_u64(8);
        let off = build_coreset(&pts, &params, &mut rng).unwrap();
        let qo = quality(&pts, &off, &params, 3, &[1.2, 2.0], 111);
        table.row(vec![
            "offline".into(),
            w.name().into(),
            off.len().to_string(),
            fmt(qo.upper),
            fmt(qo.lower),
        ]);
        let mut b = StreamCoresetBuilder::new(params.clone(), StreamParams::default(), &mut rng);
        b.process_all(&insertion_stream(&pts));
        let st = b.finish().unwrap();
        let qs = quality(&pts, &st, &params, 3, &[1.2, 2.0], 111);
        table.row(vec![
            "streaming".into(),
            w.name().into(),
            st.len().to_string(),
            fmt(qs.upper),
            fmt(qs.lower),
        ]);
    }
    table.print();
    println!("Shape check: the two paths' worst ratios are comparable.\n");
}

/// E6 — distributed communication ∝ s, quality preserved.
fn e6_distributed(scale: &Scale) {
    println!("## E6 — distributed: communication ∝ s · poly(k d log Δ) (Thm 4.7)\n");
    let params = default_params(3, 2.0);
    let n = scale.n_quality * 2;
    let pts = Workload::Gaussian.generate(params.grid, n, 3, 15);
    let mut table = Table::new(&[
        "s",
        "broadcast",
        "upload",
        "upload/machine",
        "|Q'|",
        "worst ratio",
    ]);
    for &s in &scale.machines {
        let shards = split_round_robin(&pts, s);
        let (cs, stats) =
            DistributedCoreset::run_threaded(&shards, &params, &StreamParams::default(), 19)
                .expect("protocol");
        let q = quality(&pts, &cs, &params, 2, &[1.3, 2.0], 222);
        table.row(vec![
            s.to_string(),
            fmt_bytes(stats.broadcast_bytes),
            fmt_bytes(stats.upload_bytes),
            fmt_bytes(stats.upload_bytes / s as u64),
            cs.len().to_string(),
            fmt(q.worst()),
        ]);
    }
    table.print();
    println!("Shape check: upload/machine shrinks (bounded summaries), total upload");
    println!("grows ≲ linearly in s; quality flat across s.\n");
}

/// E7 — end-to-end: solve on coreset vs solve on full data.
fn e7_end_to_end(scale: &Scale) {
    println!("## E7 — end-to-end capacitated solving on coreset vs full data (Fact 2.3)\n");
    let n = scale.n_quality.min(8000);
    let k = 3;
    let mut table = Table::new(&[
        "workload",
        "r",
        "solve on",
        "time",
        "centers' cost on full Q",
    ]);
    for w in [Workload::Gaussian, Workload::Imbalanced] {
        for &r in &[1.0f64, 2.0] {
            let params = default_params(k, r);
            let pts = w.generate(params.grid, n, k, 17);
            let cap = n as f64 / k as f64 * 1.25;
            let mut rng = StdRng::seed_from_u64(10);

            // On the full data (the expensive reference).
            let t0 = Instant::now();
            let full_sol = capacitated_lloyd_raw(&pts, None, k, r, cap, 8, &mut rng);
            let t_full = t0.elapsed();
            let full_eval = capacitated_cost(&pts, None, &full_sol.centers, cap * 1.2, r);
            table.row(vec![
                w.name().into(),
                fmt(r),
                format!("full ({n})"),
                format!("{t_full:.2?}"),
                fmt(full_eval),
            ]);

            // On the coreset.
            let t0 = Instant::now();
            let cs = build_coreset(&pts, &params, &mut rng).unwrap();
            let (cpts, cws) = cs.split();
            let cs_sol = capacitated_lloyd_raw(&cpts, Some(&cws), k, r, cap, 8, &mut rng);
            let t_cs = t0.elapsed();
            let cs_eval = capacitated_cost(&pts, None, &cs_sol.centers, cap * 1.2, r);
            table.row(vec![
                w.name().into(),
                fmt(r),
                format!("coreset ({})", cs.len()),
                format!("{t_cs:.2?}"),
                fmt(cs_eval),
            ]);
        }
    }
    table.print();
    println!("Shape check: coreset-solved centers cost ≈ full-data-solved centers");
    println!("(within (1+O(eps))), at a fraction of the time.\n");
}

/// E8 — against the prior art: three-pass insertion-only baseline.
fn e8_three_pass_baseline(scale: &Scale) {
    println!("## E8 — vs the three-pass insertion-only baseline [BBLM14] (§1)\n");
    let n = scale.n_quality;
    let k = 3;
    let params = default_params(k, 2.0);
    let pts = Workload::Imbalanced.generate(params.grid, n, k, 21);
    let mut rng = StdRng::seed_from_u64(12);

    let mut table = Table::new(&[
        "method",
        "passes",
        "deletions",
        "summary size",
        "upper",
        "lower",
    ]);

    // Ours, one pass.
    let mut b = StreamCoresetBuilder::new(params.clone(), StreamParams::default(), &mut rng);
    b.process_all(&insertion_stream(&pts));
    let ours = b.finish().unwrap();
    let q = quality(&pts, &ours, &params, 4, &[1.2, 2.0], 333);
    table.row(vec![
        "this paper".into(),
        "1".into(),
        "yes".into(),
        ours.len().to_string(),
        fmt(q.upper),
        fmt(q.lower),
    ]);

    // Baseline, three passes, sized to a comparable summary.
    let m1 = (ours.len() / (2 * k).max(1)).max(8);
    let bl = ThreePassBaseline::new(k, 2.0, 4 * k * k, m1, StdRng::seed_from_u64(13));
    let summary = bl.run(&pts);
    let (bp, bw): (Vec<_>, Vec<_>) = summary.iter().map(|w| (w.point.clone(), w.weight)).unzip();
    let qb = weighted_summary_quality(
        &pts,
        &bp,
        &bw,
        k,
        2.0,
        params.eta,
        4,
        &[1.2, 2.0],
        params.grid.delta,
        333,
    );
    table.row(vec![
        "3-pass baseline".into(),
        ThreePassBaseline::<StdRng>::PASSES.to_string(),
        "no".into(),
        bp.len().to_string(),
        fmt(qb.upper),
        fmt(qb.lower),
    ]);
    table.print();

    // The structural difference: deletions.
    let mut bl2 = ThreePassBaseline::new(k, 2.0, 64, 16, StdRng::seed_from_u64(14));
    bl2.insert(&pts[0]);
    match bl2.delete(&pts[0]) {
        Err(msg) => println!("baseline.delete(): Err(\"{msg}\")"),
        Ok(_) => println!("baseline.delete(): unexpectedly succeeded!"),
    }
    println!("this paper:        deletions handled natively (see E4).\n");
    println!("Shape check: one pass vs three; comparable estimation quality at");
    println!("similar summary sizes; only ours survives dynamic streams.\n");
}

/// E9 — ablations: uncapacitated baselines break; knob sweeps.
fn e9_ablations(scale: &Scale) {
    println!("## E9 — ablations\n");
    let n = scale.n_quality;
    let k = 3;
    let params = default_params(k, 2.0);
    let pts = Workload::Imbalanced.generate(params.grid, n, k, 25);
    let mut rng = StdRng::seed_from_u64(16);

    println!("### E9a — standard (uncapacitated) coresets vs ours, capacitated cost\n");
    let mut table = Table::new(&["summary", "size", "upper", "lower", "worst"]);

    let cs = build_coreset(&pts, &params, &mut rng).unwrap();
    let q = quality(&pts, &cs, &params, 4, &[1.2, 1.6], 444);
    table.row(vec![
        "ours (capacitated)".into(),
        cs.len().to_string(),
        fmt(q.upper),
        fmt(q.lower),
        fmt(q.worst()),
    ]);

    let m = cs.len();
    let uni = uniform_coreset(&pts, m.min(n), &mut rng);
    let (up, uw): (Vec<_>, Vec<_>) = uni.iter().map(|w| (w.point.clone(), w.weight)).unzip();
    let qu = weighted_summary_quality(
        &pts,
        &up,
        &uw,
        k,
        2.0,
        params.eta,
        4,
        &[1.2, 1.6],
        params.grid.delta,
        444,
    );
    table.row(vec![
        "uniform sampling".into(),
        up.len().to_string(),
        fmt(qu.upper),
        fmt(qu.lower),
        fmt(qu.worst()),
    ]);

    let sens = sensitivity_coreset(&pts, k, 2.0, m.min(n), &mut rng);
    let (sp, sw): (Vec<_>, Vec<_>) = sens.iter().map(|w| (w.point.clone(), w.weight)).unzip();
    let qs = weighted_summary_quality(
        &pts,
        &sp,
        &sw,
        k,
        2.0,
        params.eta,
        4,
        &[1.2, 1.6],
        params.grid.delta,
        444,
    );
    table.row(vec![
        "sensitivity (uncap.)".into(),
        sp.len().to_string(),
        fmt(qs.upper),
        fmt(qs.lower),
        fmt(qs.worst()),
    ]);
    table.print();
    println!("Shape check: ours dominates or matches; the uncapacitated summaries'");
    println!("worst ratios degrade when capacities bind (the paper's §1.2 motivation).\n");

    println!("### E9b — samples-per-part sweep (size/quality trade-off)\n");
    let mut table = Table::new(&["S per part", "|Q'|", "compress", "worst ratio"]);
    for &s_pp in &[12.0f64, 24.0, 48.0, 96.0] {
        let mut p2 = params.clone();
        if let ConstantsProfile::Practical {
            ref mut samples_per_part,
            ..
        } = p2.profile
        {
            *samples_per_part = s_pp;
        }
        let mut rng = StdRng::seed_from_u64(17);
        let cs = build_coreset(&pts, &p2, &mut rng).unwrap();
        let q = quality(&pts, &cs, &p2, 3, &[1.2, 2.0], 555);
        table.row(vec![
            fmt(s_pp),
            cs.len().to_string(),
            format!("{:.1}x", n as f64 / cs.len() as f64),
            fmt(q.worst()),
        ]);
    }
    table.print();

    println!("### E9c — small-part cutoff γ sweep\n");
    let mut table = Table::new(&["gamma", "|Q'|", "total weight", "worst ratio"]);
    for &g in &[0.01f64, 0.05, 0.2, 0.45] {
        let mut p2 = params.clone();
        if let ConstantsProfile::Practical { ref mut gamma, .. } = p2.profile {
            *gamma = g;
        }
        let mut rng = StdRng::seed_from_u64(18);
        let cs = build_coreset(&pts, &p2, &mut rng).unwrap();
        let q = quality(&pts, &cs, &p2, 3, &[1.2, 2.0], 666);
        table.row(vec![
            fmt(g),
            cs.len().to_string(),
            fmt(cs.total_weight()),
            fmt(q.worst()),
        ]);
    }
    table.print();
    println!("Shape check: larger γ drops more small parts (weight shrinks) —");
    println!("quality holds while γ stays ≪ 1, per Lemma 3.4.\n");
}

/// E10 — the §3.3 assignment oracle.
fn e10_assignment_oracle(scale: &Scale) {
    println!("## E10 — assignment construction via coreset (§3.3)\n");
    let n = scale.n_quality.min(8000);
    let k = 3;
    let mut table = Table::new(&[
        "workload",
        "oracle cost / flow opt",
        "max load / t",
        "assign time/pt",
    ]);
    for w in [Workload::Gaussian, Workload::Imbalanced] {
        let params = default_params(k, 2.0);
        let pts = w.generate(params.grid, n, k, 29);
        let cap = n as f64 / k as f64 * 1.2;
        let mut rng = StdRng::seed_from_u64(20);
        let cs = build_coreset(&pts, &params, &mut rng).unwrap();
        let (cpts, cws) = cs.split();
        let sol = capacitated_lloyd_raw(&cpts, Some(&cws), k, 2.0, cap, 8, &mut rng);
        let oracle = build_assignment_oracle(&cs, &params, &sol.centers, cap).unwrap();
        let t0 = Instant::now();
        let oa = oracle.assign_all(&pts);
        let dt = t0.elapsed();
        let opt = capacitated_cost(&pts, None, &sol.centers, oa.max_load().max(cap), 2.0);
        table.row(vec![
            w.name().into(),
            fmt(oa.cost / opt),
            fmt(oa.max_load() / cap),
            format!("{:.0} ns", dt.as_nanos() as f64 / n as f64),
        ]);
    }
    table.print();
    println!("Shape check: cost within (1+O(eps)) of the flow optimum; load within");
    println!("(1+O(eta))·t; assignment is O(k²d) per point — no flow solve needed.\n");
}

/// E12 — shard-count sweep through `ShardedIngest`'s merge tree.
fn e12_shard_sweep(scale: &Scale) {
    println!("## E12 — sharded ingest: merge-tree coreset across shard counts\n");
    let params = default_params(3, 2.0);
    let n = scale.n_quality * 2;
    let pts = Workload::Gaussian.generate(params.grid, n, 3, 15);
    let ops = insertion_stream(&pts);
    let mut table = Table::new(&[
        "S",
        "ingest+merge",
        "depth",
        "|Q'|",
        "worst ratio",
        "identical to S=1",
    ]);
    let run_once = |s: usize| {
        let sp = StreamParams::builder()
            .shards(s)
            .parallel(s > 1)
            .threads(s)
            .build()
            .unwrap();
        let mut ingest = sbc::ShardedIngest::new(params.clone(), sp, 19).expect("valid");
        let t0 = Instant::now();
        ingest.process_all(&ops);
        let merged = ingest.into_merged().expect("compatible shards");
        let dt = t0.elapsed();
        let depth = merged.merge_depth();
        (merged.finish().expect("sharded coreset"), dt, depth)
    };
    let (baseline, t1, _) = run_once(1);
    let q1 = quality(&pts, &baseline, &params, 2, &[1.3, 2.0], 222);
    table.row(vec![
        "1".into(),
        format!("{t1:.2?}"),
        "0".into(),
        baseline.len().to_string(),
        fmt(q1.worst()),
        "—".into(),
    ]);
    for &s in &scale.machines {
        let (cs, dt, depth) = run_once(s);
        let q = quality(&pts, &cs, &params, 2, &[1.3, 2.0], 222);
        table.row(vec![
            s.to_string(),
            format!("{dt:.2?}"),
            depth.to_string(),
            cs.len().to_string(),
            fmt(q.worst()),
            if cs.entries() == baseline.entries() {
                "✓"
            } else {
                "✗"
            }
            .to_string(),
        ]);
    }
    table.print();
    println!("Shape check: insertion-only merge is lossless — the coreset is");
    println!("bit-identical at every S (depth ⌈log₂ S⌉), so quality is exactly flat.\n");
}
