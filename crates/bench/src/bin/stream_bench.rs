//! Headline streaming-ingest throughput numbers → `BENCH_streaming.json`.
//!
//! Measures ops/sec of the three ingest paths (per-op reference scan,
//! batched ladder-pruned, batched + instance-sharded parallel) on the
//! canonical Gaussian n=4000 workload — insert-only and deletion-heavy
//! mixed-op — and writes a machine-readable JSON report plus a human
//! summary to stdout. A `"kernels"` section compares the scalar and
//! SIMD/arena ingest kernels (DESIGN.md §9) on the same host and
//! records their `kernel_speedup` ratio.
//!
//! With the `obs` feature the run also records the workspace metrics
//! registry: the report gains a `"metrics"` section and `--metrics-out
//! <path>` dumps the full snapshot to its own JSON file.
//!
//! After the timed section, an untimed **robustness pass** re-ingests
//! the insert-only workload under an optional fault profile
//! (`--fault-profile drop8|dup8|kill-early|overflow-early|chaos[@seed]`)
//! while exercising checkpoint → restore every `--checkpoint-every N`
//! ops; its space report (including the kill taxonomy) lands in the
//! JSON under `"robustness"`, and `--checkpoint-out <path>` keeps the
//! final checkpoint bytes as an artifact.
//!
//! The robustness and metrics passes also run under the flight
//! recorder: `--trace-out <path>` exports the captured timeline as
//! Chrome `trace_event` JSON (open it in Perfetto) plus a folded-stack
//! text file next to it, `--trace-buffer-events <N>` sizes the
//! per-thread ring buffers, and any injected fault or store death dumps
//! the last events as `crash-<label>.json` next to the report.
//!
//! A second, larger workload measures **sharded ingest**: a Gaussian
//! n=64k stream pushed through `sbc::ShardedIngest` with `--shards N`
//! (default 8) shard builders folded up the binary merge tree, against
//! the same stream through a single shard. Wall-clock for both, the
//! speedup ratio, and the cross-shard `ShardedSpaceReport` land under
//! `"sharding"` in the JSON — alongside `threads_available`, since the
//! ratio is only meaningful on a multicore host.
//!
//! The robustness and metrics passes also run under the **telemetry
//! sampler** (`sbc_obs::timeline`): a background thread snapshots RSS,
//! the metrics registry, and — with `--features obs-alloc`, which this
//! bin turns into a process-wide [`sbc_obs::alloc::TrackingAlloc`] —
//! per-component allocator attribution. `--telemetry-out <path>` tails
//! the ring to a JSON file (atomically rewritten every tick, plus a
//! Prometheus text-exposition sibling at `<path minus .json>.prom`)
//! that `sbc-top` can watch live; `--telemetry-every <ms>` sets the
//! cadence (default 250). The report always gains a `"telemetry"`
//! section reconciling measured truth against the nominal space bound
//! (`peak_bytes_per_point` is gated by `bench_guard`).
//!
//! Usage: `cargo run --release --bin stream_bench [--features obs] \
//!            [-- <out.json>] [--metrics-out <metrics.json>] \
//!            [--fault-profile <spec>] [--checkpoint-every <N>] \
//!            [--checkpoint-out <ckpt.bin>] [--trace-out <t.trace.json>] \
//!            [--trace-buffer-events <N>] [--shards <N>] \
//!            [--telemetry-out <t.json>] [--telemetry-every <ms>]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_bench::Workload;
use sbc_core::CoresetParams;
use sbc_distributed::DistributedCoreset;
use sbc_geometry::{dataset, GridParams};
use sbc_obs::fault::FaultPlan;
use sbc_streaming::model::{churn_stream, insertion_stream, StreamOp};
use sbc_streaming::{Kernel, Snapshot, StreamCoresetBuilder, StreamParams};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Route every heap allocation through the tracking allocator: a
/// zero-overhead passthrough to `System` unless the `obs-alloc` feature
/// compiled the attribution paths in.
#[global_allocator]
static ALLOC: sbc_obs::alloc::TrackingAlloc = sbc_obs::alloc::TrackingAlloc;

/// Reference throughput of the seed ingest path (per-op linear scan over
/// the ladder with the SipHash-backed `Storing` maps, i.e. the code
/// before the batched/ladder-pruned/store-major ingest landed), measured
/// on this machine with the exact workloads below, best of 3. Kept so
/// the report records progress against the original implementation even
/// though the live `per_op` row also benefits from the shared `Storing`
/// speedups.
fn seed_baseline(label: &str) -> Option<f64> {
    match label {
        "insert_only" => Some(9_926.0),
        "mixed_deletion_heavy" => Some(8_788.0),
        _ => None,
    }
}

struct PathResult {
    name: &'static str,
    ops_per_sec: f64,
    best_secs: f64,
}

/// Best-of-`reps` wall-clock of one full ingest; returns ops/sec.
fn measure(
    name: &'static str,
    params: &CoresetParams,
    sp: StreamParams,
    ops: &[StreamOp],
    per_op: bool,
    reps: usize,
) -> PathResult {
    let mut best = f64::INFINITY;
    let mut sink = 0i64;
    for _ in 0..reps {
        let mut rng = StdRng::seed_from_u64(7);
        let mut builder = StreamCoresetBuilder::new(params.clone(), sp, &mut rng);
        let start = Instant::now();
        if per_op {
            for op in ops {
                builder.process(op);
            }
        } else {
            builder.process_all(ops);
        }
        best = best.min(start.elapsed().as_secs_f64());
        sink = sink.wrapping_add(builder.net_count());
    }
    std::hint::black_box(sink);
    PathResult {
        name,
        ops_per_sec: ops.len() as f64 / best,
        best_secs: best,
    }
}

fn bench_workload(
    label: &str,
    params: &CoresetParams,
    ops: &[StreamOp],
    reps: usize,
    json: &mut String,
) {
    let seq = StreamParams::default();
    let par = StreamParams {
        parallel: true,
        ..seq
    };
    let results = [
        measure("per_op", params, seq, ops, true, reps),
        measure("batched", params, seq, ops, false, reps),
        measure("batched_parallel", params, par, ops, false, reps),
    ];
    let base = results[0].ops_per_sec;
    let seed = seed_baseline(label);

    println!("\n{label} ({} ops, best of {reps}):", ops.len());
    for r in &results {
        let vs_seed = seed
            .map(|s| format!("  {:>5.2}x vs seed", r.ops_per_sec / s))
            .unwrap_or_default();
        println!(
            "  {:<18} {:>12.0} ops/s  ({:.3} s)  {:>5.2}x vs per_op{vs_seed}",
            r.name,
            r.ops_per_sec,
            r.best_secs,
            r.ops_per_sec / base
        );
    }

    let _ = writeln!(json, "    \"{label}\": {{\n      \"ops\": {},", ops.len());
    if let Some(s) = seed {
        let _ = writeln!(json, "      \"seed_per_op_ops_per_sec\": {s:.1},");
    }
    for (i, r) in results.iter().enumerate() {
        let vs_seed = seed
            .map(|s| format!(", \"speedup_vs_seed\": {:.3}", r.ops_per_sec / s))
            .unwrap_or_default();
        let _ = writeln!(
            json,
            "      \"{}\": {{ \"ops_per_sec\": {:.1}, \"seconds\": {:.6}, \"speedup_vs_per_op\": {:.3}{vs_seed} }}{}",
            r.name,
            r.ops_per_sec,
            r.best_secs,
            r.ops_per_sec / base,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = write!(json, "    }}");
}

/// Same-host scalar vs SIMD/arena ingest kernels on the batched
/// insert-only workload. The `kernel_speedup` ratio (SIMD over scalar,
/// measured in the same process on the same ops) is machine-independent
/// and gated by `bench_guard`; appends the `"kernels"` section.
fn bench_kernels(params: &CoresetParams, ops: &[StreamOp], reps: usize, json: &mut String) {
    let sp = |k: Kernel| StreamParams {
        kernel: k,
        ..StreamParams::default()
    };
    let scalar = measure("scalar", params, sp(Kernel::Scalar), ops, false, reps);
    let simd = measure("simd", params, sp(Kernel::Simd), ops, false, reps);
    let speedup = simd.ops_per_sec / scalar.ops_per_sec;

    println!("\nkernels (insert_only batched, best of {reps}):");
    for r in [&scalar, &simd] {
        println!(
            "  {:<18} {:>12.0} ops/s  ({:.3} s)",
            r.name, r.ops_per_sec, r.best_secs
        );
    }
    println!("  kernel_speedup     {speedup:>12.2}x (simd vs scalar, same host)");

    let _ = writeln!(
        json,
        "  \"kernels\": {{\n    \"workload\": \"insert_only\",\n    \"path\": \"batched\",\n    \"scalar\": {{ \"ops_per_sec\": {:.1}, \"seconds\": {:.6} }},\n    \"simd\": {{ \"ops_per_sec\": {:.1}, \"seconds\": {:.6} }},\n    \"kernel_speedup\": {speedup:.3}\n  }},",
        scalar.ops_per_sec, scalar.best_secs, simd.ops_per_sec, simd.best_secs
    );
}

/// The current git commit, or `"unknown"` outside a checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Drives the downstream pipeline once so the `flow.*`, `dist.wire.*`,
/// `cluster.*` and `core.oracle.*` metrics carry real values alongside
/// the `stream.ingest.*` ones: a 2-machine distributed coreset over the
/// same workload, then an assignment oracle on its output.
fn exercise_pipeline(params: &CoresetParams, pts: &[sbc_geometry::Point]) {
    let shards = dataset::split_round_robin(pts, 2);
    let Ok((coreset, _stats)) =
        DistributedCoreset::run(&shards, params, &StreamParams::default(), 23)
    else {
        return;
    };
    let (cpts, cws) = coreset.split();
    let mut rng = StdRng::seed_from_u64(29);
    let centers =
        sbc_clustering::kmeanspp::kmeanspp_seeds(&cpts, Some(&cws), params.k, params.r, &mut rng);
    let cap = cws.iter().sum::<f64>() / params.k as f64 * 1.3;
    let _ = sbc_clustering::cost::capacitated_cost(&cpts, Some(&cws), &centers, cap, params.r);
    let _ = sbc_core::assign::build_assignment_oracle(&coreset, params, &centers, cap);
}

/// Timed sharded-ingest comparison on a larger stream: `shards` builders
/// fed by point-identity routing and folded up the merge tree, vs the
/// identical stream through one shard. Appends the `"sharding"` section.
fn bench_sharding(params: &CoresetParams, shards: usize, reps: usize, json: &mut String) {
    let n = 64_000usize;
    let pts = Workload::Gaussian.generate(params.grid, n, 3, 9);
    let ops = insertion_stream(&pts);

    let run = |s: usize, parallel: bool| -> (f64, usize, sbc::ShardedSpaceReport) {
        let sp = StreamParams::builder()
            .shards(s)
            .parallel(parallel)
            .threads(s)
            .build()
            .expect("valid stream params");
        let mut best = f64::INFINITY;
        let mut len = 0usize;
        let mut space = None;
        for _ in 0..reps {
            let mut ingest =
                sbc::ShardedIngest::new(params.clone(), sp, 7).expect("valid shard config");
            let start = Instant::now();
            ingest.process_all(&ops);
            space = Some(ingest.space_report());
            let coreset = ingest.finish().expect("sharded coreset");
            best = best.min(start.elapsed().as_secs_f64());
            len = coreset.len();
        }
        (best, len, space.expect("at least one rep"))
    };

    let (single_secs, single_len, _) = run(1, false);
    let (sharded_secs, sharded_len, space) = run(shards, true);
    let speedup = single_secs / sharded_secs;
    let threads = rayon::current_num_threads();
    assert_eq!(
        single_len, sharded_len,
        "sharded coreset must match the single-shard one"
    );

    println!("\nsharded ingest (gaussian n={n}, best of {reps}):");
    println!(
        "  single_shard       {:>12.0} ops/s  ({single_secs:.3} s)",
        n as f64 / single_secs
    );
    println!(
        "  {shards:>2} shards          {:>12.0} ops/s  ({sharded_secs:.3} s)  {speedup:>5.2}x vs single ({threads} threads available)",
        n as f64 / sharded_secs
    );

    let _ = writeln!(
        json,
        "  \"sharding\": {{\n    \"workload\": \"gaussian\",\n    \"n\": {n},\n    \"shards\": {shards},\n    \"threads_available\": {threads},\n    \"single_shard\": {{ \"seconds\": {single_secs:.6}, \"ops_per_sec\": {:.1} }},\n    \"sharded\": {{ \"seconds\": {sharded_secs:.6}, \"ops_per_sec\": {:.1} }},\n    \"speedup_vs_single\": {speedup:.3},\n    \"merged_coreset_len\": {sharded_len},\n    \"space_report\": {}\n  }},",
        n as f64 / single_secs,
        n as f64 / sharded_secs,
        space.to_json()
    );
}

/// Untimed robustness pass: ingest under `plan`, checkpointing (and
/// actually restoring — the resumed builder replaces the original, so a
/// broken restore cannot go unnoticed) every `checkpoint_every` ops.
/// Returns `(space report, checkpoints taken, last checkpoint bytes)`.
fn robustness_pass(
    params: &CoresetParams,
    plan: FaultPlan,
    ops: &[StreamOp],
    checkpoint_every: Option<usize>,
    checkpoint_out: Option<&str>,
) -> (sbc_streaming::SpaceReport, usize, Vec<u8>) {
    let sp = StreamParams::builder().faults(plan).build().expect("valid");
    let mut rng = StdRng::seed_from_u64(7);
    let mut builder = StreamCoresetBuilder::new(params.clone(), sp, &mut rng);
    let chunk = checkpoint_every.unwrap_or(ops.len().max(1));
    let mut taken = 0usize;
    let mut last_bytes = Vec::new();
    for slice in ops.chunks(chunk) {
        builder.process_all(slice);
        if checkpoint_every.is_some() {
            last_bytes = builder.checkpoint().expect("exact backend").to_bytes();
            let snap = Snapshot::from_bytes(&last_bytes).expect("own bytes decode");
            builder = StreamCoresetBuilder::restore(&snap).expect("own snapshot restores");
            taken += 1;
        }
    }
    if checkpoint_every.is_none() {
        last_bytes = builder.checkpoint().expect("exact backend").to_bytes();
    }
    if let Some(path) = checkpoint_out {
        std::fs::write(path, &last_bytes).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path} ({} checkpoint bytes)", last_bytes.len());
    }
    (builder.space_report(), taken, last_bytes)
}

/// `foo.json` → `foo.prom` (falls back to appending `.prom`): the
/// Prometheus sibling written next to a `--telemetry-out` JSON tail.
fn prom_sibling(path: &str) -> String {
    format!("{}.prom", path.strip_suffix(".json").unwrap_or(path))
}

/// Best-of-`reps` seconds for one batched ingest of `ops` (untimed
/// section; used to price the telemetry overheads below).
fn ingest_secs(params: &CoresetParams, ops: &[StreamOp], reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = StreamCoresetBuilder::new(params.clone(), StreamParams::default(), &mut rng);
        let start = Instant::now();
        b.process_all(ops);
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(b.net_count());
    }
    best
}

/// Telemetry cost figures for the report (and for `obs_overhead`'s
/// budgets): nanoseconds of allocator bookkeeping per recorded
/// alloc/dealloc pair, the enabled-but-idle (gate closed) allocator
/// share of one ingest op, and the slowdown of a full ingest with a
/// default-cadence sampler running.
struct OverheadFigures {
    alloc_pair_ns: f64,
    alloc_idle_pct: f64,
    sampling_pct: f64,
}

/// Fallback bound on heap alloc/dealloc pairs per amortized ingest op,
/// used when the tracking allocator is not installed to count the real
/// figure (batched ingest allocates on table growth and batch assembly
/// only).
const ALLOC_PAIRS_PER_OP: f64 = 8.0;

fn measure_overheads(params: &CoresetParams, ops: &[StreamOp], cadence_ms: u64) -> OverheadFigures {
    let alloc_before = sbc_obs::alloc::snapshot();
    let base_secs = ingest_secs(params, ops, 2);
    let alloc_after = sbc_obs::alloc::snapshot();
    let op_ns = base_secs * 1e9 / ops.len() as f64;

    // Alloc/dealloc pairs per amortized op: counted by the tracking
    // allocator across the two reps above when it is attributing,
    // otherwise the generous static bound.
    let pairs_per_op = if alloc_after.tracking {
        let pairs = alloc_after
            .total
            .allocs
            .saturating_sub(alloc_before.total.allocs) as f64
            / 2.0;
        pairs / ops.len() as f64
    } else {
        ALLOC_PAIRS_PER_OP
    };

    // Allocator bookkeeping, priced directly: the recording path for one
    // alloc + dealloc of a mid-sized block (reported as alloc_pair_ns),
    // and the gate-closed idle path — the permanent cost of leaving the
    // allocator installed — which is what the 1% budget in obs_overhead
    // covers. A no-op build measures ~0 for both (the hook compiles to
    // nothing).
    let pairs = 2_000_000u64;
    let start = Instant::now();
    for i in 0..pairs {
        sbc_obs::alloc::__bench_record_pair(std::hint::black_box(256 + (i & 0xFF)));
    }
    let alloc_pair_ns = start.elapsed().as_secs_f64() * 1e9 / pairs as f64;
    sbc_obs::alloc::set_enabled(false);
    let start = Instant::now();
    for i in 0..pairs {
        sbc_obs::alloc::__bench_record_pair(std::hint::black_box(256 + (i & 0xFF)));
    }
    let idle_pair_ns = start.elapsed().as_secs_f64() * 1e9 / pairs as f64;
    sbc_obs::alloc::set_enabled(true);
    let alloc_idle_pct = pairs_per_op * idle_pair_ns / op_ns * 100.0;

    // Sampling: the same ingest with a live sampler at the configured
    // cadence (no file export — pricing the snapshots, not the disk).
    let sampler = sbc_obs::timeline::Sampler::start(
        Duration::from_millis(cadence_ms),
        sbc_obs::timeline::DEFAULT_CAPACITY,
        None,
        None,
    );
    let sampled_secs = ingest_secs(params, ops, 2);
    sampler.stop();
    let sampling_pct = (sampled_secs / base_secs - 1.0).max(0.0) * 100.0;

    OverheadFigures {
        alloc_pair_ns,
        alloc_idle_pct,
        sampling_pct,
    }
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut fault_profile = "none".to_string();
    let mut checkpoint_every: Option<usize> = None;
    let mut checkpoint_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut trace_buffer: Option<usize> = None;
    let mut shards = 8usize;
    let mut telemetry_out: Option<String> = None;
    let mut telemetry_every_ms = sbc_obs::timeline::DEFAULT_CADENCE_MS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out needs a path"));
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out needs a path"));
            }
            "--trace-buffer-events" => {
                let n: usize = args
                    .next()
                    .expect("--trace-buffer-events needs an event count")
                    .parse()
                    .expect("--trace-buffer-events takes a positive integer");
                assert!(n > 0, "--trace-buffer-events takes a positive integer");
                trace_buffer = Some(n);
            }
            "--fault-profile" => {
                fault_profile = args.next().expect("--fault-profile needs a profile name");
            }
            "--checkpoint-every" => {
                let n: usize = args
                    .next()
                    .expect("--checkpoint-every needs an op count")
                    .parse()
                    .expect("--checkpoint-every takes a positive integer");
                assert!(n > 0, "--checkpoint-every takes a positive integer");
                checkpoint_every = Some(n);
            }
            "--checkpoint-out" => {
                checkpoint_out = Some(args.next().expect("--checkpoint-out needs a path"));
            }
            "--shards" => {
                shards = args
                    .next()
                    .expect("--shards needs a shard count")
                    .parse()
                    .expect("--shards takes a positive integer");
                assert!(shards > 0, "--shards takes a positive integer");
            }
            "--telemetry-out" => {
                telemetry_out = Some(args.next().expect("--telemetry-out needs a path"));
            }
            "--telemetry-every" => {
                telemetry_every_ms = args
                    .next()
                    .expect("--telemetry-every needs a cadence in ms")
                    .parse()
                    .expect("--telemetry-every takes a positive integer");
                assert!(
                    telemetry_every_ms > 0,
                    "--telemetry-every takes a positive integer"
                );
            }
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            path => out_path = Some(path.to_string()),
        }
    }
    let plan = FaultPlan::parse(&fault_profile).unwrap_or_else(|e| panic!("{e}"));
    let out_path = out_path.unwrap_or_else(|| "BENCH_streaming.json".into());
    let reps: usize = std::env::var("STREAM_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1); // 0 reps would emit inf/NaN — not representable in JSON

    let gp = GridParams::from_log_delta(8, 2);
    let params = CoresetParams::builder(3, gp).build().unwrap();
    let n = 4000usize;
    let pts = Workload::Gaussian.generate(gp, n, 3, 9);
    let insert_ops = insertion_stream(&pts);
    let mut rng = StdRng::seed_from_u64(17);
    let mixed_ops = churn_stream(&pts, 0.3, &mut rng);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"schema_version\": 8,\n  \"git_commit\": \"{}\",\n  \"generated_at\": \"{}\",",
        git_commit(),
        sbc_obs::iso8601_utc_now()
    );
    let _ = writeln!(
        json,
        "  \"workload\": \"gaussian\",\n  \"n\": {n},\n  \"grid\": \"log_delta=8, d=2\",\n  \"threads_available\": {},\n  \"groups\": {{",
        rayon::current_num_threads()
    );
    bench_workload("insert_only", &params, &insert_ops, reps, &mut json);
    json.push_str(",\n");
    bench_workload("mixed_deletion_heavy", &params, &mixed_ops, reps, &mut json);
    json.push_str("\n  },\n");

    // Scalar vs SIMD kernel comparison on the headline workload; the
    // ratio is gated by bench_guard.
    bench_kernels(&params, &insert_ops, reps, &mut json);

    // Sharded merge-tree ingest on the larger stream (fewer reps — each
    // rep ingests 16× the ops of the headline workload).
    bench_sharding(&params, shards, reps.min(2), &mut json);

    // Flight recorder: the robustness and metrics passes run traced
    // (never the timed section above). Crash dumps from injected faults
    // land next to the report JSON.
    if let Some(n) = trace_buffer {
        sbc_obs::trace::set_capacity(n);
    }
    let crash_dir = std::path::Path::new(&out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    sbc_obs::trace::set_crash_dir(Some(crash_dir));
    sbc_obs::trace::reset();
    sbc_obs::trace::set_enabled(true);

    // Telemetry sampler: spans the robustness and metrics passes (never
    // the timed section above). With `--telemetry-out` every tick
    // atomically rewrites a JSON tail plus a Prometheus sibling that
    // `sbc-top` (or a scraper) can watch mid-run; either way the final
    // ring feeds the report's `"telemetry"` section.
    let telemetry_json_path = telemetry_out.as_ref().map(std::path::PathBuf::from);
    let telemetry_prom_path = telemetry_out
        .as_ref()
        .map(|p| std::path::PathBuf::from(prom_sibling(p)));
    let sampler = sbc_obs::timeline::Sampler::start(
        Duration::from_millis(telemetry_every_ms),
        sbc_obs::timeline::DEFAULT_CAPACITY,
        telemetry_json_path.clone(),
        telemetry_prom_path.clone(),
    );

    // Robustness pass (untimed): fault injection + checkpoint/restore
    // cycling. Its space report carries the canonical kill taxonomy —
    // `runaway_kill` / `sketch_overflow`, the same snake_case names
    // `SpaceReport::to_json` emits (pinned by the bench schema test).
    let (rep, ckpts_taken, last_ckpt) = robustness_pass(
        &params,
        plan,
        &insert_ops,
        checkpoint_every,
        checkpoint_out.as_deref(),
    );
    println!(
        "\nrobustness pass (profile `{fault_profile}`): {} dead stores \
         ({} runaway_kill, {} sketch_overflow), {} checkpoint/restore cycles",
        rep.dead_stores, rep.runaway_kill, rep.sketch_overflow, ckpts_taken
    );
    let _ = writeln!(
        json,
        "  \"robustness\": {{\n    \"fault_profile\": \"{fault_profile}\",\n    \"checkpoints_taken\": {ckpts_taken},\n    \"checkpoint_bytes_last\": {},\n    \"space_report\": {}\n  }},",
        last_ckpt.len(),
        rep.to_json()
    );

    // Metrics recording starts after the timed section so the counters
    // describe one clean, reproducible pass (and never skew the numbers
    // above). Without the `obs` feature this records nothing and the
    // section reports `"feature_enabled": false`.
    sbc_obs::reset();
    sbc_obs::set_enabled(true);
    if sbc_obs::enabled() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut builder =
            StreamCoresetBuilder::new(params.clone(), StreamParams::default(), &mut rng);
        builder.process_all(&insert_ops);
        exercise_pipeline(&params, &pts);
    }
    sbc_obs::set_enabled(false);
    let snapshot = sbc_obs::snapshot();

    // Wind down the sampler (final tick + export flush), then price the
    // telemetry overheads on the now-quiet process.
    let timeline = sampler.stop();
    let overhead = measure_overheads(&params, &insert_ops, telemetry_every_ms);
    let alloc_snap = sbc_obs::alloc::snapshot();
    let rss_peak = timeline.samples().map(|s| s.rss_bytes).max().unwrap_or(0);
    let peak_bytes_per_point = rep.peak_measured_bytes as f64 / n as f64;
    println!(
        "\ntelemetry: {} samples @ {telemetry_every_ms} ms (alloc tracking {}), \
         rss peak {}, peak {:.0} measured B/point",
        timeline.len(),
        if alloc_snap.tracking { "on" } else { "off" },
        sbc_streaming::human_bytes(rss_peak as usize),
        peak_bytes_per_point
    );
    println!(
        "  overhead: alloc pair {:.2} ns ({:.4}%/op idle), sampling {:.2}%",
        overhead.alloc_pair_ns, overhead.alloc_idle_pct, overhead.sampling_pct
    );
    let _ = writeln!(
        json,
        "  \"telemetry\": {{\n    \"alloc_tracking\": {},\n    \"cadence_ms\": {telemetry_every_ms},\n    \"samples\": {},\n    \"rss_peak_bytes\": {rss_peak},\n    \"alloc\": {},\n    \"space\": {{\n      \"measured_bytes\": {},\n      \"peak_measured_bytes\": {},\n      \"expected_sketch_bytes\": {},\n      \"nominal_sketch_bytes\": {},\n      \"nominal_to_measured_ratio\": {:.3},\n      \"peak_bytes_per_point\": {peak_bytes_per_point:.1}\n    }},\n    \"overhead\": {{\n      \"alloc_pair_ns\": {:.3},\n      \"alloc_idle_pct\": {:.4},\n      \"sampling_pct\": {:.3}\n    }}\n  }},",
        alloc_snap.tracking,
        timeline.len(),
        alloc_snap.to_json(),
        rep.measured_bytes,
        rep.peak_measured_bytes,
        rep.expected_sketch_bytes,
        rep.nominal_sketch_bytes,
        rep.nominal_to_measured_ratio(),
        overhead.alloc_pair_ns,
        overhead.alloc_idle_pct,
        overhead.sampling_pct,
    );
    if let (Some(jp), Some(pp)) = (&telemetry_json_path, &telemetry_prom_path) {
        println!("wrote {} + {}", jp.display(), pp.display());
    }

    sbc_obs::trace::set_enabled(false);
    let tsnap = sbc_obs::trace::snapshot();
    let _ = writeln!(
        json,
        "  \"trace\": {{\n    \"feature_enabled\": {},\n    \"buffer_events\": {},\n    \"total_events\": {},\n    \"dropped\": {},\n    \"threads\": {}\n  }},",
        tsnap.feature_enabled,
        tsnap.capacity,
        tsnap.total_events(),
        tsnap.dropped,
        tsnap.threads.len()
    );
    println!(
        "\nflight recorder: {} events across {} threads ({} dropped)",
        tsnap.total_events(),
        tsnap.threads.len(),
        tsnap.dropped
    );

    let _ = writeln!(json, "  \"metrics\": {}\n}}", snapshot.to_json());

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));
    println!("\nwrote {out_path}");
    if let Some(tpath) = trace_out {
        std::fs::write(&tpath, sbc_obs::trace::chrome_trace(&tsnap).render_pretty())
            .unwrap_or_else(|e| panic!("failed to write {tpath}: {e}"));
        let folded_path = format!("{}.folded", tpath.strip_suffix(".json").unwrap_or(&tpath));
        std::fs::write(&folded_path, sbc_obs::trace::folded_stacks(&tsnap))
            .unwrap_or_else(|e| panic!("failed to write {folded_path}: {e}"));
        println!("wrote {tpath} + {folded_path}");
    }
    if let Some(mpath) = metrics_out {
        std::fs::write(&mpath, snapshot.to_json().render_pretty())
            .unwrap_or_else(|e| panic!("failed to write {mpath}: {e}"));
        println!(
            "wrote {mpath} ({} counters, {} histograms)",
            snapshot.counters.len(),
            snapshot.histograms.len()
        );
    }
}
