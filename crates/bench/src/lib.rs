//! Shared helpers for the Criterion benches and the `experiments`
//! harness: canonical workloads, quality evaluation, and markdown table
//! printing. See EXPERIMENTS.md for the experiment index (the paper has
//! no empirical section; these regenerate the theorem-derived suite
//! documented in DESIGN.md §4).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_clustering::cost::capacitated_cost;
use sbc_core::verify::center_battery;
use sbc_core::{Coreset, CoresetParams};
use sbc_geometry::dataset;
use sbc_geometry::{GridParams, Point};

/// The canonical workload set used across experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Balanced Gaussian mixture (clusterable, the friendly case).
    Gaussian,
    /// 70/20/10 imbalanced mixture (capacity constraints bind).
    Imbalanced,
    /// Uniform noise (worst case for partition coresets).
    Uniform,
    /// Near-degenerate line plus outliers.
    Line,
}

impl Workload {
    /// All workloads.
    pub fn all() -> [Workload; 4] {
        [
            Workload::Gaussian,
            Workload::Imbalanced,
            Workload::Uniform,
            Workload::Line,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Gaussian => "gaussian",
            Workload::Imbalanced => "imbalanced",
            Workload::Uniform => "uniform",
            Workload::Line => "line+outliers",
        }
    }

    /// Generates `n` points of this workload.
    pub fn generate(&self, gp: GridParams, n: usize, k: usize, seed: u64) -> Vec<Point> {
        match self {
            Workload::Gaussian => dataset::gaussian_mixture(gp, n, k, 0.04, seed),
            Workload::Imbalanced => {
                dataset::imbalanced_mixture(gp, n, &[0.7, 0.2, 0.1], 0.03, seed)
            }
            Workload::Uniform => dataset::uniform(gp, n, seed),
            Workload::Line => dataset::line_with_outliers(gp, n, n / 50 + 1, seed),
        }
    }
}

/// Worst-case sandwich ratios of a coreset over a `(Z, t)` battery
/// (the empirical Theorem 3.19 item 1; see `sbc_core::verify`).
#[derive(Clone, Copy, Debug)]
pub struct QualitySummary {
    /// max `cost_{(1+η)t}(Q′)/cost_t(Q)` — should be ≤ 1+ε.
    pub upper: f64,
    /// max `cost_{(1+η)t}(Q)/cost_t(Q′)` — should be ≤ 1+ε.
    pub lower: f64,
    /// Evaluated `(Z, t)` pairs.
    pub trials: usize,
}

impl QualitySummary {
    /// The worse of the two directions.
    pub fn worst(&self) -> f64 {
        self.upper.max(self.lower)
    }
}

/// Evaluates coreset quality over `num_sets` center batteries ×
/// `cap_factors` capacities (a thin wrapper around
/// `sbc_core::verify::verify_strong_coreset` with a fixed seed).
pub fn quality(
    points: &[Point],
    coreset: &Coreset,
    params: &CoresetParams,
    num_sets: usize,
    cap_factors: &[f64],
    seed: u64,
) -> QualitySummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let q = sbc_core::verify::verify_strong_coreset(
        points,
        coreset,
        params,
        num_sets,
        cap_factors,
        &mut rng,
    );
    QualitySummary {
        upper: q.max_upper,
        lower: q.max_lower,
        trials: q.trials,
    }
}

/// Worst |estimate/truth| ratio of an arbitrary weighted summary (used
/// for the baseline coresets in E8/E9, which are not `Coreset`s).
#[allow(clippy::too_many_arguments)]
pub fn weighted_summary_quality(
    points: &[Point],
    summary_points: &[Point],
    summary_weights: &[f64],
    k: usize,
    r: f64,
    eta: f64,
    num_sets: usize,
    cap_factors: &[f64],
    delta: u64,
    seed: u64,
) -> QualitySummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = points.len() as f64;
    let batteries = center_battery(points, k, r, num_sets, delta, &mut rng);
    let mut out = QualitySummary {
        upper: 0.0,
        lower: 0.0,
        trials: 0,
    };
    for centers in &batteries {
        for &f in cap_factors {
            let t = n / k as f64 * f;
            let cq_t = capacitated_cost(points, None, centers, t, r);
            let cq_eta = capacitated_cost(points, None, centers, (1.0 + eta) * t, r);
            let cc_t = capacitated_cost(summary_points, Some(summary_weights), centers, t, r);
            let cc_eta = capacitated_cost(
                summary_points,
                Some(summary_weights),
                centers,
                (1.0 + eta) * t,
                r,
            );
            if !cq_t.is_finite() || !cc_t.is_finite() {
                continue;
            }
            out.trials += 1;
            if cq_t > 0.0 {
                out.upper = out.upper.max(cc_eta / cq_t);
            }
            if cc_t > 0.0 {
                out.lower = out.lower.max(cq_eta / cc_t);
            }
        }
    }
    out
}

/// Minimal markdown table printer for the experiment harness.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders as a github-flavored markdown table.
    pub fn print(&self) {
        let widths: Vec<usize> = (0..self.headers.len())
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(self.headers[c].len()))
                    .max()
                    .unwrap_or(1)
            })
            .collect();
        let line = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect();
            println!("| {} |", body.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
        println!();
    }
}

/// Formats a float compactly for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats a byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_generate_requested_sizes() {
        let gp = GridParams::from_log_delta(7, 2);
        for w in Workload::all() {
            let pts = w.generate(gp, 500, 3, 1);
            assert_eq!(pts.len(), 500, "{}", w.name());
            assert!(pts.iter().all(|p| p.in_cube(128)));
        }
    }

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234567.0), "1.23e6");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(1.2345), "1.234");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
    }
}
