//! Golden-file schema agreement: the kill taxonomy must be spelled the
//! same way everywhere it appears — `SpaceReport::to_json`, the live
//! `SpaceReport` emitted by `stream_bench`'s robustness pass, and the
//! checked-in `BENCH_streaming.json` artifact. The canonical names are
//! snake_case `runaway_kill` / `sketch_overflow`; the pre-rename
//! spellings (`runaway_killed` / `sketch_overflowed`) must not resurface
//! in either place.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_core::CoresetParams;
use sbc_geometry::{dataset, GridParams};
use sbc_streaming::{StreamCoresetBuilder, StreamParams};

const CANONICAL: [&str; 2] = ["runaway_kill", "sketch_overflow"];
const LEGACY: [&str; 2] = ["runaway_killed", "sketch_overflowed"];

fn quoted(key: &str) -> String {
    format!("\"{key}\"")
}

#[test]
fn space_report_json_uses_canonical_kill_taxonomy() {
    let gp = GridParams::from_log_delta(6, 2);
    let params = CoresetParams::builder(2, gp).build().unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut b = StreamCoresetBuilder::new(params, StreamParams::default(), &mut rng);
    b.insert_batch(&dataset::gaussian_mixture(gp, 400, 2, 0.05, 3));
    let json = b.space_report().to_json().to_string();
    for key in CANONICAL {
        assert!(json.contains(&quoted(key)), "missing {key} in {json}");
    }
    for key in LEGACY {
        assert!(
            !json.contains(&quoted(key)),
            "legacy kill-taxonomy key {key} resurfaced in {json}"
        );
    }
}

#[test]
fn bench_streaming_golden_file_agrees_with_space_report() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_streaming.json must be checked in at the repo root");
    assert!(
        text.contains("\"space_report\""),
        "BENCH_streaming.json lost its robustness space_report section"
    );
    for key in CANONICAL {
        assert!(
            text.contains(&quoted(key)),
            "BENCH_streaming.json disagrees with SpaceReport::to_json: missing {key}"
        );
    }
    for key in LEGACY {
        assert!(
            !text.contains(&quoted(key)),
            "BENCH_streaming.json uses the legacy kill-taxonomy key {key}"
        );
    }
}

#[test]
fn bench_streaming_golden_file_matches_schema_v8() {
    // The committed baseline must parse as JSON and carry the v8 schema
    // (trace, kernels, telemetry, serving, service_obs and migration
    // sections included) — the same shape `bench_guard` validates on
    // fresh reports, so a drifting writer cannot slip past CI.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_streaming.json must be checked in at the repo root");
    let doc = sbc_obs::json::JsonValue::parse(&text).expect("baseline parses as JSON");
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_u64()),
        Some(8),
        "committed BENCH_streaming.json must be schema_version 8"
    );
    for key in [
        "git_commit",
        "generated_at",
        "groups",
        "kernels",
        "sharding",
        "robustness",
        "telemetry",
        "trace",
        "metrics",
        "serving",
        "service_obs",
        "migration",
    ] {
        assert!(doc.get(key).is_some(), "baseline missing \"{key}\" section");
    }
    // The kernels section carries the SIMD-vs-scalar comparison that
    // bench_guard gates; its ratio must be present and positive.
    let kernels = doc.get("kernels").unwrap();
    for side in ["scalar", "simd"] {
        for field in ["ops_per_sec", "seconds"] {
            let v = kernels
                .get(side)
                .and_then(|s| s.get(field))
                .and_then(|v| v.as_f64());
            assert!(
                v.is_some_and(|x| x > 0.0),
                "kernels.{side} lacks a positive \"{field}\""
            );
        }
    }
    assert!(
        kernels
            .get("kernel_speedup")
            .and_then(|v| v.as_f64())
            .is_some_and(|r| r > 0.0),
        "kernels section lacks a positive kernel_speedup"
    );
    let trace = doc.get("trace").unwrap();
    for key in [
        "feature_enabled",
        "buffer_events",
        "total_events",
        "dropped",
        "threads",
    ] {
        assert!(trace.get(key).is_some(), "trace section missing \"{key}\"");
    }
    for group in ["insert_only", "mixed_deletion_heavy"] {
        let g = doc.get("groups").unwrap().get(group);
        let g = g.unwrap_or_else(|| panic!("baseline missing group {group}"));
        for p in ["per_op", "batched", "batched_parallel"] {
            let ratio = g
                .get(p)
                .and_then(|pj| pj.get("speedup_vs_per_op"))
                .and_then(|v| v.as_f64());
            assert!(
                ratio.is_some_and(|r| r > 0.0),
                "baseline {group}.{p} lacks a positive speedup_vs_per_op"
            );
        }
    }
    // The sharding section's wall-clock numbers are host-dependent and
    // not gated, but its shape (and the honest threads_available tag
    // next to the speedup) must be present.
    let sharding = doc.get("sharding").unwrap();
    for key in [
        "shards",
        "threads_available",
        "single_shard",
        "sharded",
        "speedup_vs_single",
        "space_report",
    ] {
        assert!(
            sharding.get(key).is_some(),
            "sharding section missing \"{key}\""
        );
    }
    for key in ["shards", "total", "max_per_shard"] {
        assert!(
            sharding.get("space_report").unwrap().get(key).is_some(),
            "sharding.space_report missing \"{key}\""
        );
    }
    // The telemetry section reconciles measured truth against the
    // nominal bound; bench_guard gates peak_bytes_per_point, so the
    // baseline must carry a positive value for it.
    let telemetry = doc.get("telemetry").unwrap();
    assert!(
        telemetry
            .get("alloc_tracking")
            .and_then(|v| v.as_bool())
            .is_some(),
        "telemetry section lacks the alloc_tracking flag"
    );
    for key in ["cadence_ms", "samples", "rss_peak_bytes"] {
        assert!(
            telemetry.get(key).and_then(|v| v.as_f64()).is_some(),
            "telemetry section missing numeric \"{key}\""
        );
    }
    assert!(
        telemetry
            .get("alloc")
            .and_then(|a| a.get("components"))
            .is_some(),
        "telemetry.alloc lacks per-component attribution"
    );
    let space = telemetry.get("space").expect("telemetry.space present");
    for key in [
        "measured_bytes",
        "peak_measured_bytes",
        "expected_sketch_bytes",
        "nominal_sketch_bytes",
        "nominal_to_measured_ratio",
    ] {
        assert!(
            space.get(key).and_then(|v| v.as_f64()).is_some(),
            "telemetry.space missing numeric \"{key}\""
        );
    }
    assert!(
        space
            .get("peak_bytes_per_point")
            .and_then(|v| v.as_f64())
            .is_some_and(|v| v > 0.0),
        "telemetry.space lacks a positive peak_bytes_per_point (the bench_guard memory gate)"
    );
    let overhead = telemetry
        .get("overhead")
        .expect("telemetry.overhead present");
    for key in ["alloc_pair_ns", "alloc_idle_pct", "sampling_pct"] {
        assert!(
            overhead.get(key).and_then(|v| v.as_f64()).is_some(),
            "telemetry.overhead missing numeric \"{key}\""
        );
    }
    // The serving section (v6): serve_bench's multi-tenant report. The
    // committed baseline must claim ≥1000 interleaved tenants with
    // bit-identical served coresets — the service tier's acceptance
    // bar — and carry the ratios bench_guard gates.
    let serving = doc.get("serving").expect("serving section present");
    assert!(
        serving
            .get("tenants")
            .and_then(|v| v.as_u64())
            .is_some_and(|t| t >= 1000),
        "serving baseline must cover at least 1000 interleaved tenants"
    );
    assert_eq!(
        serving
            .get("coresets_bit_identical")
            .and_then(|v| v.as_bool()),
        Some(true),
        "serving baseline must have bit-identical served coresets"
    );
    for key in [
        "protocol_version",
        "multi_tenant_efficiency",
        "p50_admission_ns",
        "p99_admission_ns",
        "p999_admission_ns",
        "admission_samples",
        "peak_bytes_per_tenant",
        "identity_checks",
        "evictions",
        "restores",
    ] {
        assert!(
            serving
                .get(key)
                .and_then(|v| v.as_f64())
                .is_some_and(|v| v > 0.0),
            "serving section missing positive numeric \"{key}\""
        );
    }
    for key in ["reject_overloaded", "shed_evictions"] {
        assert!(
            serving
                .get("overload_drill")
                .and_then(|d| d.get(key))
                .and_then(|v| v.as_f64())
                .is_some(),
            "serving.overload_drill missing numeric \"{key}\""
        );
    }
    assert!(
        serving
            .get("faults")
            .and_then(|f| f.get("profile"))
            .and_then(|v| v.as_str())
            .is_some(),
        "serving.faults missing string \"profile\""
    );
    // The service_obs section (v7): the instrumentation-overhead
    // comparison bench_guard gates, plus the SLO-histogram percentiles.
    let service_obs = doc.get("service_obs").expect("service_obs present");
    assert!(
        service_obs
            .get("feature_enabled")
            .and_then(|v| v.as_bool())
            .is_some(),
        "service_obs lacks the feature_enabled flag"
    );
    for key in [
        "metrics_disabled_ops_per_sec",
        "metrics_enabled_ops_per_sec",
        "overhead_ratio",
        "p50_request_ns",
        "p99_request_ns",
        "p999_request_ns",
        "request_samples",
    ] {
        assert!(
            service_obs
                .get(key)
                .and_then(|v| v.as_f64())
                .is_some_and(|v| v > 0.0),
            "service_obs section missing positive numeric \"{key}\""
        );
    }
    assert!(
        service_obs
            .get("slow_dumps")
            .and_then(|v| v.as_f64())
            .is_some(),
        "service_obs section missing numeric \"slow_dumps\""
    );
    // The migration section (v8): the fleet live-migration report. The
    // baseline must claim committed cutovers with bit-identical
    // migrated coresets, a replay queue that genuinely carried ops and
    // stayed inside its advertised bound — the hard gates bench_guard
    // re-checks on every fresh report.
    let migration = doc.get("migration").expect("migration section present");
    assert_eq!(
        migration
            .get("coresets_bit_identical")
            .and_then(|v| v.as_bool()),
        Some(true),
        "migration baseline must have bit-identical migrated coresets"
    );
    for key in [
        "fleet_servers",
        "tenants",
        "chunk_bytes",
        "migrations",
        "cutovers",
        "chunks",
        "replayed_ops",
        "replay_queue_peak",
        "replay_queue_max_ops",
        "p50_cutover_ns",
        "p99_cutover_ns",
        "identity_checks",
    ] {
        assert!(
            migration
                .get(key)
                .and_then(|v| v.as_f64())
                .is_some_and(|v| v > 0.0),
            "migration section missing positive numeric \"{key}\""
        );
    }
    for key in ["drained", "aborts"] {
        assert!(
            migration.get(key).and_then(|v| v.as_f64()).is_some(),
            "migration section missing numeric \"{key}\""
        );
    }
    let (peak, bound) = (
        migration
            .get("replay_queue_peak")
            .and_then(|v| v.as_u64())
            .unwrap(),
        migration
            .get("replay_queue_max_ops")
            .and_then(|v| v.as_u64())
            .unwrap(),
    );
    assert!(
        peak <= bound,
        "migration baseline's replay_queue_peak {peak} exceeds its bound {bound}"
    );
    assert!(
        migration
            .get("faults")
            .and_then(|f| f.get("profile"))
            .and_then(|v| v.as_str())
            .is_some(),
        "migration.faults missing string \"profile\""
    );
}

#[test]
fn space_report_ratio_renders_null_when_nothing_is_measured() {
    // Schema pin: a `SpaceReport` with no measured denominator must emit
    // `"nominal_to_measured_ratio": null` — the key never disappears,
    // and it must not render as 0.0 (which would read as "nominal is
    // zero" to a ratio-gating consumer).
    let report = sbc_streaming::SpaceReport {
        hash_bytes: 0,
        store_bytes: 0,
        nominal_sketch_bytes: 1 << 20,
        instances: 0,
        dead_stores: 0,
        live_stores: 0,
        runaway_kill: 0,
        sketch_overflow: 0,
        arena_slots: 0,
        arena_entries: 0,
        measured_bytes: 0,
        peak_measured_bytes: 0,
        expected_sketch_bytes: 0,
    };
    let json = report.to_json().to_string();
    assert!(
        json.contains("\"nominal_to_measured_ratio\": null")
            || json.contains("\"nominal_to_measured_ratio\":null"),
        "no-denominator ratio must render as null, got {json}"
    );
    let doc = sbc_obs::json::JsonValue::parse(&json).expect("report JSON parses");
    let ratio = doc.get("nominal_to_measured_ratio").expect("key present");
    assert!(ratio.as_f64().is_none(), "ratio must be null, not a number");
}
