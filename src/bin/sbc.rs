//! `sbc` — command-line front end for the streaming-balanced-clustering
//! library: build coresets from CSV point files, generate synthetic
//! workloads, and solve capacitated k-means/k-median end-to-end.
//!
//! CSV format: one point per line, comma-separated integer coordinates
//! (1-based, each within `[1, Δ]`). Lines starting with `#` are ignored.
//!
//! ```sh
//! sbc generate --workload gaussian --n 20000 --k 3 --log-delta 8 --d 2 --out points.csv
//! sbc stats    --input points.csv
//! sbc coreset  --input points.csv --k 3 --r 2 --log-delta 8 --out coreset.csv
//! sbc solve    --input points.csv --k 3 --r 2 --log-delta 8 --cap-slack 1.2
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_clustering::capacitated::capacitated_lloyd_raw;
use sbc_core::{build_coreset, CoresetParams};
use sbc_geometry::{dataset, GridParams, Point};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "stats" => cmd_stats(&opts),
        "coreset" => cmd_coreset(&opts),
        "solve" => cmd_solve(&opts),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sbc generate --workload <gaussian|imbalanced|uniform> --n <N> --k <K> \\
               --log-delta <L> --d <D> --out <FILE> [--seed <S>]
  sbc stats    --input <FILE>
  sbc coreset  --input <FILE> --k <K> --r <1|2> --log-delta <L> \\
               [--eps <E>] [--eta <H>] [--out <FILE>] [--seed <S>]
  sbc solve    --input <FILE> --k <K> --r <1|2> --log-delta <L> \\
               [--eps <E>] [--eta <H>] [--cap-slack <C>] [--seed <S>]";

/// Parsed `--key value` options.
struct Opts(std::collections::HashMap<String, String>);

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = std::collections::HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --option, got `{key}`"));
            };
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Self(map))
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        self.0
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{key}"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.str(key)?
            .parse()
            .map_err(|_| format!("--{key}: invalid value"))
    }

    fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: invalid value")),
        }
    }
}

fn cmd_generate(o: &Opts) -> Result<(), String> {
    let workload = o.str("workload")?;
    let n: usize = o.num("n")?;
    let k: usize = o.num("k")?;
    let l: u32 = o.num("log-delta")?;
    let d: usize = o.num("d")?;
    let seed: u64 = o.num_or("seed", 1)?;
    let out = o.str("out")?;
    let gp = GridParams::from_log_delta(l, d);
    let points = match workload {
        "gaussian" => dataset::gaussian_mixture(gp, n, k, 0.04, seed),
        "imbalanced" => dataset::imbalanced_mixture(gp, n, &[0.7, 0.2, 0.1], 0.03, seed),
        "uniform" => dataset::uniform(gp, n, seed),
        other => return Err(format!("unknown workload `{other}`")),
    };
    write_csv(out, points.iter().map(|p| (p.clone(), None)))?;
    eprintln!("wrote {n} points to {out}");
    Ok(())
}

fn cmd_stats(o: &Opts) -> Result<(), String> {
    let points = read_csv(o.str("input")?)?;
    if points.is_empty() {
        return Err("empty input".into());
    }
    let d = points[0].dim();
    let mut lo = vec![u32::MAX; d];
    let mut hi = vec![0u32; d];
    for p in &points {
        for (j, &c) in p.coords().iter().enumerate() {
            lo[j] = lo[j].min(c);
            hi[j] = hi[j].max(c);
        }
    }
    let max_coord = hi.iter().copied().max().unwrap_or(1);
    println!("points:    {}", points.len());
    println!("dimension: {d}");
    println!("bbox lo:   {lo:?}");
    println!("bbox hi:   {hi:?}");
    println!(
        "suggested --log-delta: {}",
        (max_coord as f64).log2().ceil() as u32
    );
    Ok(())
}

fn cmd_coreset(o: &Opts) -> Result<(), String> {
    let points = read_csv(o.str("input")?)?;
    let (params, mut rng) = params_from(o, &points)?;
    let t0 = std::time::Instant::now();
    let coreset = build_coreset(&points, &params, &mut rng).map_err(|e| e.to_string())?;
    eprintln!(
        "coreset: {} points (compression {:.1}x), total weight {:.0}, o = {:.3e}, built in {:?}",
        coreset.len(),
        points.len() as f64 / coreset.len() as f64,
        coreset.total_weight(),
        coreset.o,
        t0.elapsed()
    );
    if let Ok(out) = o.str("out") {
        write_csv(
            out,
            coreset
                .entries()
                .iter()
                .map(|e| (e.point.clone(), Some(e.weight))),
        )?;
        eprintln!("wrote weighted coreset to {out} (last column = weight)");
    }
    Ok(())
}

fn cmd_solve(o: &Opts) -> Result<(), String> {
    let points = read_csv(o.str("input")?)?;
    let (params, mut rng) = params_from(o, &points)?;
    let slack: f64 = o.num_or("cap-slack", 1.2)?;
    let cap = points.len() as f64 / params.k as f64 * slack;
    let coreset = build_coreset(&points, &params, &mut rng).map_err(|e| e.to_string())?;
    let (cpts, cws) = coreset.split();
    let sol = capacitated_lloyd_raw(&cpts, Some(&cws), params.k, params.r, cap, 10, &mut rng);
    println!("capacity t = {cap:.0} per center (slack {slack})");
    println!("coreset size: {}", coreset.len());
    for (i, z) in sol.centers.iter().enumerate() {
        println!("center {}: {:?}", i + 1, z.coords());
    }
    println!("capacitated cost on coreset: {:.0}", sol.cost);
    Ok(())
}

fn params_from(o: &Opts, points: &[Point]) -> Result<(CoresetParams, StdRng), String> {
    if points.is_empty() {
        return Err("empty input".into());
    }
    let k: usize = o.num("k")?;
    let r: f64 = o.num("r")?;
    let l: u32 = o.num("log-delta")?;
    let eps: f64 = o.num_or("eps", 0.2)?;
    let eta: f64 = o.num_or("eta", 0.2)?;
    let seed: u64 = o.num_or("seed", 42)?;
    let d = points[0].dim();
    let gp = GridParams::from_log_delta(l, d);
    for p in points {
        if !p.in_cube(gp.delta) {
            return Err(format!(
                "point {:?} outside [1, {}]; raise --log-delta",
                p.coords(),
                gp.delta
            ));
        }
    }
    Ok((
        CoresetParams::builder(k, gp)
            .r(r)
            .eps(eps)
            .eta(eta)
            .build()
            .unwrap(),
        StdRng::seed_from_u64(seed),
    ))
}

/// Reads points (optionally ignoring a trailing weight column is NOT done:
/// every numeric field is a coordinate).
fn read_csv(path: &str) -> Result<Vec<Point>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_csv(&body)
}

fn parse_csv(body: &str) -> Result<Vec<Point>, String> {
    let mut out = Vec::new();
    let mut dim = None;
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let coords: Result<Vec<u32>, _> =
            line.split(',').map(|f| f.trim().parse::<u32>()).collect();
        let coords = coords.map_err(|_| format!("line {}: bad integer", lineno + 1))?;
        if coords.is_empty() || coords.iter().any(|&c| c < 1) {
            return Err(format!(
                "line {}: coordinates are 1-based integers",
                lineno + 1
            ));
        }
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(format!("line {}: dimension mismatch", lineno + 1))
            }
            _ => {}
        }
        out.push(Point::new(coords));
    }
    Ok(out)
}

fn write_csv(path: &str, rows: impl Iterator<Item = (Point, Option<f64>)>) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = std::io::BufWriter::new(f);
    for (p, weight) in rows {
        let coords: Vec<String> = p.coords().iter().map(u32::to_string).collect();
        match weight {
            None => writeln!(w, "{}", coords.join(",")),
            Some(wt) => writeln!(w, "{},{wt}", coords.join(",")),
        }
        .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_csv_roundtrip() {
        let body = "# comment\n1,2,3\n4, 5 ,6\n\n7,8,9\n";
        let pts = parse_csv(body).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], Point::new(vec![4, 5, 6]));
    }

    #[test]
    fn parse_csv_rejects_bad_rows() {
        assert!(parse_csv("1,2\n3").is_err(), "dimension mismatch");
        assert!(parse_csv("0,2").is_err(), "zero coordinate");
        assert!(parse_csv("a,b").is_err(), "non-numeric");
    }

    #[test]
    fn opts_parsing() {
        let args: Vec<String> = ["--k", "3", "--r", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Opts::parse(&args).unwrap();
        assert_eq!(o.num::<usize>("k").unwrap(), 3);
        assert_eq!(o.num_or::<f64>("eps", 0.5).unwrap(), 0.5);
        assert!(o.num::<usize>("missing").is_err());
        assert!(Opts::parse(&["stray".to_string()]).is_err());
    }
}
