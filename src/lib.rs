//! # streaming-balanced-clustering
//!
//! Umbrella crate for the reproduction of **"Streaming Balanced
//! Clustering"** (Esfandiari, Mirrokni, Zhong; SPAA 2023 brief
//! announcement / arXiv:1910.00788): the first single-pass
//! dynamic-streaming **strong coreset** for capacitated (balanced)
//! k-clustering in `ℓr` — capacitated k-median (`r = 1`) and capacitated
//! k-means (`r = 2`) — using `poly(ε⁻¹ η⁻¹ k d log Δ)` space, handling
//! both insertions and deletions, plus a distributed protocol with
//! `s · poly(ε⁻¹ η⁻¹ k d log Δ)` communication.
//!
//! New code should prefer the [`sbc`] facade crate — `sbc::prelude`,
//! validating builders, and the unified [`sbc::SbcError`] — which this
//! crate re-exports as [`facade`]. This crate additionally exposes the
//! workspace crates under stable module names; see each crate's
//! documentation for details:
//!
//! * [`geometry`] — points, metrics, shifted grid hierarchies, datasets;
//! * [`hashing`] — λ-wise independent hash families;
//! * [`flow`] — min-cost flow / transportation for capacitated assignment;
//! * [`clustering`] — cost functions, solvers, baselines;
//! * [`core`] — the paper's coreset construction (Algorithms 1 & 2,
//!   half-spaces, assignment transfer, §3.3 assignment oracle);
//! * [`streaming`] — the one-pass dynamic-streaming pipeline (Alg. 4);
//! * [`distributed`] — the coordinator-model protocol (Thm. 4.7).
//!
//! ## Quickstart
//!
//! ```
//! use streaming_balanced_clustering::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. A dataset in [Δ]^d, Δ = 2^L.
//! let gp = GridParams::from_log_delta(8, 2);
//! let points = sbc_geometry::dataset::gaussian_mixture(gp, 6000, 3, 0.04, 7);
//!
//! // 2. Build a strong coreset for capacitated 3-means (r = 2).
//! let params = CoresetParams::builder(3, gp).build().unwrap();
//! let mut rng = StdRng::seed_from_u64(42);
//! let coreset = build_coreset(&points, &params, &mut rng).expect("coreset");
//! assert!(coreset.len() < points.len());
//!
//! // 3. Solve capacitated k-means on the coreset and evaluate on it.
//! let total_w: f64 = coreset.entries().iter().map(|e| e.weight).sum();
//! let cap = total_w / 3.0 * 1.2;
//! let sol = capacitated_lloyd(&coreset.weighted_points(), 3, 2.0, cap, 10, &mut rng);
//! assert_eq!(sol.centers.len(), 3);
//! ```

pub use sbc as facade;
pub use sbc_clustering as clustering;
pub use sbc_core as core;
pub use sbc_distributed as distributed;
pub use sbc_flow as flow;
pub use sbc_geometry as geometry;
pub use sbc_hash as hashing;
pub use sbc_streaming as streaming;

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use sbc::SbcError;
    pub use sbc_clustering::{capacitated_cost, capacitated_lloyd, CostReport};
    pub use sbc_core::{build_coreset, Coreset, CoresetParams};
    pub use sbc_distributed::DistributedCoreset;
    pub use sbc_geometry::{GridParams, Point, WeightedPoint};
    pub use sbc_streaming::{StreamCoresetBuilder, StreamOp};
}
