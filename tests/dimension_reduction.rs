//! The §1 [MMR19] extension end-to-end: for `d ≫ k/ε`, project to a
//! low-dimensional grid with an oblivious JL map, build the coreset
//! *there*, and verify capacitated costs still transfer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_clustering::cost::capacitated_cost;
use sbc_clustering::kmeanspp::kmeanspp_seeds;
use sbc_core::{build_coreset, CoresetParams};
use sbc_geometry::dataset::gaussian_mixture;
use sbc_geometry::{GridParams, JlProjector};

#[test]
fn coreset_in_projected_space_preserves_capacitated_cost_shape() {
    // 24-dimensional source data, projected to 4 dimensions.
    let src = GridParams::from_log_delta(8, 24);
    let dst = GridParams::from_log_delta(11, 4);
    let n = 3000;
    let k = 3;
    let pts = gaussian_mixture(src, n, k, 0.05, 3);
    let mut rng = StdRng::seed_from_u64(1);
    let proj = JlProjector::new(24, src.delta as f64, dst, &mut rng);
    let low = proj.project_all(&pts);

    // Coreset in the projected space.
    let params = CoresetParams::builder(k, dst).build().unwrap();
    let cs = build_coreset(&low, &params, &mut rng).expect("coreset in low dim");
    let (cpts, cws) = cs.split();

    // Evaluate a center set both on the projected full data and on the
    // projected-space coreset: the coreset guarantee applies verbatim in
    // the projected space.
    let centers = kmeanspp_seeds(&low, None, k, 2.0, &mut rng);
    let cap = n as f64 / k as f64 * 1.3;
    let full_low = capacitated_cost(&low, None, &centers, cap, 2.0);
    let est_low = capacitated_cost(&cpts, Some(&cws), &centers, 1.2 * cap, 2.0);
    let ratio = est_low / full_low;
    assert!(
        (0.6..=1.5).contains(&ratio),
        "projected-space coreset ratio {ratio}"
    );
}

#[test]
fn projection_roughly_preserves_clustering_cost_ordering() {
    // JL preserves which center set is better: evaluate two center sets
    // in both spaces and check the ordering survives when the gap is
    // meaningful.
    let src = GridParams::from_log_delta(8, 16);
    let dst = GridParams::from_log_delta(11, 6);
    let n = 800;
    let k = 3;
    let pts = gaussian_mixture(src, n, k, 0.04, 9);
    let mut rng = StdRng::seed_from_u64(2);
    let proj = JlProjector::new(16, src.delta as f64, dst, &mut rng);
    let low = proj.project_all(&pts);

    let good = kmeanspp_seeds(&pts, None, k, 2.0, &mut rng);
    let bad: Vec<_> = (0..k)
        .map(|i| sbc_geometry::Point::new(vec![(i as u32 + 1) * 3; 16]))
        .collect();
    let good_low = proj.project_all(&good);
    let bad_low = proj.project_all(&bad);

    let cap = n as f64; // uncapacitated limit for a clean comparison
    let hi_good = capacitated_cost(&pts, None, &good, cap, 2.0);
    let hi_bad = capacitated_cost(&pts, None, &bad, cap, 2.0);
    let lo_good = capacitated_cost(&low, None, &good_low, cap, 2.0);
    let lo_bad = capacitated_cost(&low, None, &bad_low, cap, 2.0);
    assert!(
        hi_good < hi_bad,
        "sanity: seeds beat corner centers upstairs"
    );
    assert!(lo_good < lo_bad, "ordering must survive projection");
}
