//! Differential oracle: sharded merge-tree ingest vs the single-stream
//! builder, judged against exact capacitated flow costs (the E1
//! protocol) on every workload family and both ℓ_r norms.
//!
//! Two tiers of claim:
//!
//! * **Bit-identity** (fault-free): shard builders share the hash family
//!   of the monolithic builder, and for a stream partitioned by point
//!   identity the merged state *equals* the single-shard state — so the
//!   S-shard coreset is byte-for-byte the 1-shard coreset, on insertion
//!   streams for every `S`.
//! * **Sandwich-ratio bound**: even where bit-identity is not guaranteed
//!   (deletion-heavy streams, injected faults), the sharded coreset's
//!   worst cost-estimation ratio against exact flow costs must satisfy
//!   the same bound as the single-stream coreset, and the two ratios
//!   must agree within the merge tree's `1 + 2ε` budget envelope.
//!
//! The whole suite re-runs under an injected fault profile when
//! `SBC_FAULT_PROFILE` is set (the CI robustness job exercises
//! `chaos@7`); fault decisions are positional per store, so serial and
//! parallel sharded ingest stay bit-identical even while stores are
//! being killed mid-stream.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc::prelude::*;
use sbc_clustering::cost::capacitated_cost;
use sbc_clustering::kmeanspp::kmeanspp_seeds;
use sbc_core::CoresetParams;
use sbc_geometry::dataset::{
    gaussian_mixture, imbalanced_mixture, line_with_outliers, two_phase_dynamic, uniform,
};
use sbc_geometry::GridParams;
use sbc_streaming::model::{insert_delete_stream, insertion_stream};

const N: usize = 2400;

fn grid() -> GridParams {
    GridParams::from_log_delta(8, 2)
}

/// The E1 workload families (fixed seeds — the oracle is deterministic).
fn workloads() -> Vec<(&'static str, Vec<Point>)> {
    let gp = grid();
    vec![
        ("gaussian", gaussian_mixture(gp, N, 3, 0.04, 61)),
        ("uniform", uniform(gp, N, 62)),
        (
            "imbalanced",
            imbalanced_mixture(gp, N, &[0.7, 0.2, 0.1], 0.05, 63),
        ),
        ("line", line_with_outliers(gp, N, 40, 64)),
    ]
}

fn params(r: f64) -> CoresetParams {
    CoresetParams::builder(3, grid()).r(r).build().unwrap()
}

/// Fault plan under test: `SBC_FAULT_PROFILE` (the robustness job sets
/// `chaos@7`) or lossless by default.
fn env_faults() -> FaultPlan {
    match std::env::var("SBC_FAULT_PROFILE") {
        Ok(s) => FaultPlan::parse(&s).expect("valid SBC_FAULT_PROFILE"),
        Err(_) => FaultPlan::NONE,
    }
}

fn stream_params(shards: usize) -> StreamParams {
    StreamParams::builder()
        .shards(shards)
        .faults(env_faults())
        .build()
        .unwrap()
}

fn run_sharded(points_ops: &[StreamOp], r: f64, shards: usize, seed: u64) -> Option<Coreset> {
    let mut ingest = ShardedIngest::new(params(r), stream_params(shards), seed).unwrap();
    ingest.process_all(points_ops);
    ingest.finish().ok()
}

/// Worst sandwich ratio of coreset cost estimates against exact flow
/// costs over a few fixed `(Z, t)` queries — the E1 oracle.
fn quality(points: &[Point], coreset: &Coreset, r: f64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let (cpts, cws) = coreset.split();
    let n = points.len() as f64;
    let mut worst: f64 = 1.0;
    for trial in 0..2 {
        let centers = kmeanspp_seeds(points, None, 3, r, &mut rng);
        let t = n / 3.0 * (1.2 + 0.4 * trial as f64);
        let full = capacitated_cost(points, None, &centers, t, r);
        let est = capacitated_cost(&cpts, Some(&cws), &centers, 1.2 * t, r);
        if full.is_finite() && full > 0.0 && est.is_finite() {
            worst = worst.max((est / full).max(full / est));
        }
    }
    worst
}

#[test]
fn sharded_insertion_coreset_is_bit_identical_to_single_stream() {
    let faulty = env_faults() != FaultPlan::NONE;
    for (name, pts) in workloads() {
        let ops = insertion_stream(&pts);
        for r in [1.0, 2.0] {
            let single = run_sharded(&ops, r, 1, 97);
            for s in [2usize, 4, 8] {
                let sharded = run_sharded(&ops, r, s, 97);
                if faulty {
                    // Injected store deaths depend on per-store update
                    // counts, which sharding changes — equality is out,
                    // but survival must agree with quality (below) and
                    // serial/parallel determinism (other test) held.
                    continue;
                }
                let a = single.as_ref().expect("fault-free single run");
                let b = sharded.expect("fault-free sharded run");
                assert_eq!(a.o, b.o, "{name} r={r} S={s}");
                assert_eq!(
                    a.entries(),
                    b.entries(),
                    "{name} r={r} S={s}: sharded coreset diverged"
                );
            }
        }
    }
}

#[test]
fn sharded_quality_satisfies_the_single_stream_bound() {
    // The sandwich-ratio oracle on every E1 family × both norms, S = 4.
    // The mixtures mirror streaming_matches_offline's streaming bound;
    // the near-degenerate `line` family under-estimates at the tight
    // capacity trial even single-stream (measured baselines ≈ 1.85 at
    // ℓ_1 and ≈ 4.0 at ℓ_2), so its absolute bound reflects that — the
    // sharding claim is carried by the 1+2ε differential envelope
    // either way. Slightly relaxed when a fault profile kills stores.
    let faulty = env_faults() != FaultPlan::NONE;
    let bound = |name: &str, r: f64| -> f64 {
        let base = match (name, r as i64) {
            ("line", 1) => 2.2,
            ("line", _) => 4.5,
            (_, 1) => 1.7,
            _ => 1.6,
        };
        base + if faulty { 0.2 } else { 0.0 }
    };
    for (name, pts) in workloads() {
        let ops = insertion_stream(&pts);
        for r in [1.0, 2.0] {
            let bound = bound(name, r);
            let eps = params(r).eps;
            let Some(single) = run_sharded(&ops, r, 1, 103) else {
                continue; // injected kill storm: nothing to compare
            };
            let Some(sharded) = run_sharded(&ops, r, 4, 103) else {
                continue;
            };
            let q1 = quality(&pts, &single, r, 300);
            let qs = quality(&pts, &sharded, r, 300);
            assert!(q1 <= bound, "{name} r={r}: single quality {q1}");
            assert!(qs <= bound, "{name} r={r}: sharded quality {qs}");
            assert!(
                qs <= q1 * (1.0 + 2.0 * eps) + 1e-9,
                "{name} r={r}: sharded ratio {qs} outside the 1+2ε envelope of {q1}"
            );
        }
    }
}

#[test]
fn sharded_deletion_streams_match_the_oracle_too() {
    // Insert-then-delete churn: point-identity routing sends each delete
    // to the shard that saw the insert, so every shard substream is a
    // valid dynamic stream. The surviving-set coreset must satisfy the
    // same bound as the single-stream run for every tree width.
    let gp = grid();
    let faulty = env_faults() != FaultPlan::NONE;
    let bound = if faulty { 1.8 } else { 1.6 };
    let ds = two_phase_dynamic(gp, 2000, 1200, 3, 71);
    let mut rng = StdRng::seed_from_u64(71);
    let ops = insert_delete_stream(&ds.kept, &ds.churn, &mut rng);
    let eps = params(2.0).eps;
    let single = run_sharded(&ops, 2.0, 1, 107);
    let q1 = single.as_ref().map(|cs| quality(&ds.kept, cs, 2.0, 400));
    for s in [2usize, 4, 8] {
        let Some(cs) = run_sharded(&ops, 2.0, s, 107) else {
            assert!(faulty, "fault-free sharded deletion run must finish");
            continue;
        };
        let kept: std::collections::HashSet<&Point> = ds.kept.iter().collect();
        assert!(
            cs.entries().iter().all(|e| kept.contains(&e.point)),
            "S={s}: a deleted point leaked into the coreset"
        );
        let qs = quality(&ds.kept, &cs, 2.0, 400);
        assert!(qs <= bound, "S={s}: sharded dynamic quality {qs}");
        if let Some(q1) = q1 {
            assert!(
                qs <= q1 * (1.0 + 2.0 * eps) + 1e-9,
                "S={s}: dynamic ratio {qs} outside the 1+2ε envelope of {q1}"
            );
        }
    }
}

#[test]
fn scalar_and_simd_kernels_are_bit_identical() {
    // Kernel differential on every E1 family: the arena/SIMD batch
    // kernels must reproduce the scalar reference path bit for bit
    // across per-op, batched, and parallel-batched ingest, with a
    // checkpoint cut mid-stream on top. Compared: net counts, exported
    // summaries (cells, small points, rates), canonical store
    // snapshots, and the finished coresets. Space reports are *not*
    // compared — the two kernels lay the same logical state out
    // differently and report different byte figures by design.
    use sbc_streaming::{Kernel, Snapshot, StreamCoresetBuilder};
    let faults = env_faults();
    for (name, pts) in workloads() {
        let ops = insertion_stream(&pts);
        let mk = |kernel: Kernel, parallel: bool| {
            let sp = StreamParams::builder()
                .kernel(kernel)
                .parallel(parallel)
                .threads(2)
                .faults(faults)
                .build()
                .unwrap();
            let mut rng = StdRng::seed_from_u64(131);
            StreamCoresetBuilder::new(params(2.0), sp, &mut rng)
        };

        // Scalar reference: per-op ingest, with a mid-stream checkpoint.
        let mut reference = mk(Kernel::Scalar, false);
        for op in &ops[..N / 2] {
            reference.process(op);
        }
        let scalar_cut = reference.checkpoint().expect("scalar checkpoint");
        for op in &ops[N / 2..] {
            reference.process(op);
        }
        let ref_summaries = reference.export_summaries();

        // SIMD kernels: per-op, batched, and parallel-batched, each cut
        // at the same point.
        for parallel in [false, true] {
            let mut b = mk(Kernel::Simd, parallel);
            b.process_all(&ops[..N / 2]);
            let cut = b.checkpoint().expect("simd checkpoint");
            assert_eq!(
                cut.instances, scalar_cut.instances,
                "{name} parallel={parallel}: mid-stream snapshots diverged"
            );
            assert_eq!(cut.net_count, scalar_cut.net_count);
            b.process_all(&ops[N / 2..]);
            assert_eq!(b.net_count(), reference.net_count());
            assert_eq!(
                b.export_summaries(),
                ref_summaries,
                "{name} parallel={parallel}: summaries diverged"
            );
        }
        let mut simd_per_op = mk(Kernel::Simd, false);
        for op in &ops {
            simd_per_op.process(op);
        }
        assert_eq!(
            simd_per_op.export_summaries(),
            ref_summaries,
            "{name}: per-op SIMD path diverged"
        );

        // Cross-kernel resume: a scalar builder's checkpoint, pushed
        // through the byte codec (which drops the kernel field),
        // restores onto this host's default kernel and must continue to
        // the same final state.
        let roundtrip = Snapshot::from_bytes(&scalar_cut.to_bytes()).expect("codec roundtrip");
        let mut resumed = StreamCoresetBuilder::restore(&roundtrip).expect("restore");
        resumed.process_all(&ops[N / 2..]);
        assert_eq!(
            resumed.export_summaries(),
            ref_summaries,
            "{name}: cross-kernel resume diverged"
        );

        // And the coresets themselves agree (fault-free only: a kill
        // storm can leave nothing to assemble).
        if faults == FaultPlan::NONE {
            let a = reference.finish_ref().expect("scalar coreset");
            let mut b = mk(Kernel::Simd, false);
            b.process_all(&ops);
            let b = b.finish_ref().expect("simd coreset");
            assert_eq!(a.o, b.o, "{name}");
            assert_eq!(a.entries(), b.entries(), "{name}: coresets diverged");
        }
    }
}

#[test]
fn serial_and_parallel_sharded_ingest_are_bit_identical() {
    // Holds under fault injection too: fault decisions are pure
    // positional functions of (store, update index), and shard routing
    // is a pure function of the point — threads change neither.
    let pts = gaussian_mixture(grid(), 2000, 3, 0.04, 79);
    let ops = insertion_stream(&pts);
    let serial = StreamParams::builder()
        .shards(4)
        .faults(env_faults())
        .build()
        .unwrap();
    let parallel = StreamParams::builder()
        .shards(4)
        .parallel(true)
        .threads(4)
        .faults(env_faults())
        .build()
        .unwrap();
    let run = |sp: StreamParams| {
        let mut ingest = ShardedIngest::new(params(2.0), sp, 113).unwrap();
        ingest.process_all(&ops);
        ingest.finish()
    };
    match (run(serial), run(parallel)) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.o, b.o);
            assert_eq!(a.entries(), b.entries());
        }
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!(
            "serial and parallel disagree on success: {:?} vs {:?}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}
