//! End-to-end integration: dataset → offline coreset → capacitated
//! solver on the coreset → evaluation on the full data (Fact 2.3's
//! composition), plus the §3.3 assignment oracle.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_clustering::capacitated::capacitated_lloyd_raw;
use sbc_clustering::cost::capacitated_cost;
use sbc_core::assign::build_assignment_oracle;
use sbc_core::{build_coreset, CoresetParams};
use sbc_geometry::dataset::{gaussian_mixture, imbalanced_mixture};
use sbc_geometry::GridParams;

#[test]
fn coreset_solution_transfers_to_full_data() {
    let gp = GridParams::from_log_delta(8, 2);
    let k = 3;
    let n = 6000;
    let params = CoresetParams::builder(k, gp).build().unwrap();
    let points = gaussian_mixture(gp, n, k, 0.04, 31);
    let mut rng = StdRng::seed_from_u64(1);

    let coreset = build_coreset(&points, &params, &mut rng).expect("coreset");
    let cap = n as f64 / k as f64 * 1.25;
    let (cpts, cws) = coreset.split();
    let sol = capacitated_lloyd_raw(&cpts, Some(&cws), k, 2.0, cap, 10, &mut rng);

    // Fact 2.3: an (α, β)-approx on the coreset is a
    // ((1+O(ε))α, (1+O(η))β)-approx on Q. We can't know α exactly, but
    // the coreset↔full cost ratio at these centers must be tight.
    let full = capacitated_cost(&points, None, &sol.centers, cap * (1.0 + params.eta), 2.0);
    assert!(full.is_finite());
    let ratio = full / sol.cost;
    assert!(
        (0.6..=1.5).contains(&ratio),
        "coreset cost {} vs full cost {full} (ratio {ratio})",
        sol.cost
    );
}

#[test]
fn oracle_extends_coreset_solution_with_bounded_violation() {
    let gp = GridParams::from_log_delta(8, 2);
    let k = 3;
    let n = 5000;
    let params = CoresetParams::builder(k, gp).build().unwrap();
    let points = imbalanced_mixture(gp, n, &[0.7, 0.2, 0.1], 0.03, 7);
    let mut rng = StdRng::seed_from_u64(2);

    let coreset = build_coreset(&points, &params, &mut rng).expect("coreset");
    let cap = n as f64 / k as f64 * 1.2;
    let (cpts, cws) = coreset.split();
    let sol = capacitated_lloyd_raw(&cpts, Some(&cws), k, 2.0, cap, 10, &mut rng);

    let oracle = build_assignment_oracle(&coreset, &params, &sol.centers, cap).expect("oracle");
    let oa = oracle.assign_all(&points);
    assert_eq!(oa.center_of.len(), n);
    assert!(
        oa.max_load() <= 1.4 * cap,
        "oracle load {} vs cap {cap}",
        oa.max_load()
    );
    // The oracle's assignment cost must be close to the flow optimum at
    // its own realized max load.
    let opt = capacitated_cost(&points, None, &sol.centers, oa.max_load().max(cap), 2.0);
    assert!(oa.cost <= 1.6 * opt, "oracle {} vs optimum {opt}", oa.cost);
}

#[test]
fn kmedian_pipeline_works_too() {
    let gp = GridParams::from_log_delta(7, 2);
    let k = 2;
    let n = 3000;
    let params = CoresetParams::builder(k, gp).r(1.0).build().unwrap();
    let points = gaussian_mixture(gp, n, k, 0.05, 13);
    let mut rng = StdRng::seed_from_u64(3);

    let coreset = build_coreset(&points, &params, &mut rng).expect("coreset");
    let cap = n as f64 / k as f64 * 1.3;
    let (cpts, cws) = coreset.split();
    let sol = capacitated_lloyd_raw(&cpts, Some(&cws), k, 1.0, cap, 8, &mut rng);
    let full = capacitated_cost(&points, None, &sol.centers, cap * 1.2, 1.0);
    let ratio = full / sol.cost;
    assert!((0.6..=1.5).contains(&ratio), "r=1 ratio {ratio}");
}
