//! Property-based tests of the capacitated cost substrate — the
//! definitions in the paper's §2 that everything else is measured by.

use proptest::prelude::*;
use sbc_flow::brute::brute_force_capacitated;
use sbc_flow::rounding::integral_capacitated_assignment;
use sbc_flow::transport::{capacitated_cost_value, optimal_fractional_assignment};
use sbc_geometry::metric::{dist_r_pow, nearest};
use sbc_geometry::Point;

fn small_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((1u32..=32, 1u32..=32), 2..7).prop_map(|cs| {
        cs.into_iter()
            .map(|(a, b)| Point::new(vec![a, b]))
            .collect()
    })
}

fn small_centers() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((1u32..=32, 1u32..=32), 1..4).prop_map(|cs| {
        cs.into_iter()
            .map(|(a, b)| Point::new(vec![a, b]))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fractional transportation optimum equals the exhaustive
    /// integral optimum on unit-weight instances with integer capacity
    /// (transportation polytopes with integral data have integral
    /// vertices).
    #[test]
    fn flow_matches_brute_force(points in small_points(), centers in small_centers(), cap_extra in 0usize..3, r_sel in 0usize..2) {
        let r = if r_sel == 0 { 1.0 } else { 2.0 };
        let k = centers.len();
        let min_cap = points.len().div_ceil(k);
        let cap = min_cap + cap_extra;
        let brute = brute_force_capacitated(&points, &centers, cap, r);
        let flow = capacitated_cost_value(&points, None, &centers, cap as f64, r);
        match brute {
            None => prop_assert!(flow.is_infinite()),
            Some((cost, _)) => {
                prop_assert!(flow.is_finite());
                prop_assert!((flow - cost).abs() <= 1e-6 * cost.max(1.0),
                    "flow {flow} vs brute {cost}");
            }
        }
    }

    /// cost_t is non-increasing in t, and equals the nearest-center cost
    /// once t ≥ n (the uncapacitated limit, §2's cost_∞).
    #[test]
    fn cost_monotone_in_capacity(points in small_points(), centers in small_centers(), r_sel in 0usize..2) {
        let r = if r_sel == 0 { 1.0 } else { 2.0 };
        let n = points.len() as f64;
        let k = centers.len() as f64;
        let t_min = (n / k).ceil();
        let costs: Vec<f64> = [t_min, t_min + 1.0, n, n * 2.0]
            .iter()
            .map(|&t| capacitated_cost_value(&points, None, &centers, t, r))
            .collect();
        for w in costs.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9, "cost increased with capacity: {costs:?}");
        }
        // Uncapacitated limit.
        let unc: f64 = points
            .iter()
            .map(|p| {
                centers.iter().map(|z| dist_r_pow(p, z, r)).fold(f64::INFINITY, f64::min)
            })
            .sum();
        prop_assert!((costs[3] - unc).abs() <= 1e-9 + 1e-9 * unc);
    }

    /// The §3.3 rounding never loses feasibility by more than the
    /// guaranteed (k−1)·max-weight violation, and its cost is at least
    /// the fractional optimum (it is an integral solution).
    #[test]
    fn rounding_violation_bounded(points in small_points(), centers in small_centers()) {
        let n = points.len() as f64;
        let k = centers.len() as f64;
        let cap = (n / k).ceil() + 1.0;
        if let Some(frac) = optimal_fractional_assignment(&points, None, &centers, cap, 2.0) {
            let integral = integral_capacitated_assignment(&points, None, &centers, cap, 2.0).unwrap();
            prop_assert!(integral.max_load() <= cap + (k - 1.0) + 1e-9);
            prop_assert!(integral.cost >= frac.cost - 1e-6);
            // Every point assigned exactly once.
            prop_assert_eq!(integral.loads.iter().sum::<f64>() as usize, points.len());
        }
    }

    /// With a single center the capacitated cost is either ∞ (capacity
    /// short) or exactly the sum of costs to that center.
    #[test]
    fn single_center_degenerate(points in small_points(), cx in 1u32..=32, cy in 1u32..=32) {
        let center = vec![Point::new(vec![cx, cy])];
        let n = points.len() as f64;
        let direct: f64 = points.iter().map(|p| dist_r_pow(p, &center[0], 2.0)).sum();
        let ok = capacitated_cost_value(&points, None, &center, n, 2.0);
        prop_assert!((ok - direct).abs() <= 1e-9 + 1e-12 * direct);
        let short = capacitated_cost_value(&points, None, &center, n - 1.0, 2.0);
        prop_assert!(short.is_infinite());
    }

    /// Nearest-assignment is optimal when capacities are slack: the
    /// fractional solution routes every point to its nearest center.
    #[test]
    fn slack_capacity_routes_nearest(points in small_points(), centers in small_centers()) {
        let frac = optimal_fractional_assignment(&points, None, &centers, points.len() as f64 + 1.0, 2.0).unwrap();
        for (i, p) in points.iter().enumerate() {
            let (j, _) = nearest(p, &centers);
            let via_near: f64 = frac.shares[i]
                .iter()
                .filter(|(c, _)| {
                    // allow ties: any center at the same distance
                    (dist_r_pow(p, &centers[*c], 2.0) - dist_r_pow(p, &centers[j], 2.0)).abs() < 1e-9
                })
                .map(|(_, w)| w)
                .sum();
            prop_assert!((via_near - 1.0).abs() < 1e-6, "point {i} not at nearest");
        }
    }
}
