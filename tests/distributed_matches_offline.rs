//! Distributed ↔ streaming ↔ offline agreement (Theorem 4.7): the
//! coordinator protocol must produce coresets of the same quality as the
//! centralized constructions, with communication independent of the
//! shard contents' size.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_clustering::cost::capacitated_cost;
use sbc_clustering::kmeanspp::kmeanspp_seeds;
use sbc_core::CoresetParams;
use sbc_distributed::DistributedCoreset;
use sbc_geometry::dataset::{gaussian_mixture, split_round_robin};
use sbc_geometry::GridParams;
use sbc_streaming::StreamParams;

fn params() -> CoresetParams {
    CoresetParams::builder(3, GridParams::from_log_delta(8, 2))
        .build()
        .unwrap()
}

#[test]
fn distributed_coreset_estimates_costs_well() {
    let p = params();
    let n = 8000;
    let pts = gaussian_mixture(p.grid, n, 3, 0.04, 61);
    let shards = split_round_robin(&pts, 5);
    let (cs, stats) =
        DistributedCoreset::run(&shards, &p, &StreamParams::default(), 23).expect("protocol");
    assert_eq!(stats.machines, 5);

    let (cpts, cws) = cs.split();
    let mut rng = StdRng::seed_from_u64(9);
    let mut worst: f64 = 1.0;
    let mut compared = 0;
    for trial in 0..3 {
        let centers = kmeanspp_seeds(&pts, None, 3, 2.0, &mut rng);
        let t = n as f64 / 3.0 * (1.2 + 0.3 * trial as f64);
        // Compare at EQUAL capacity: at these tight capacities the
        // objective is capacity-dominated, so giving the estimate side
        // slack changes the problem being solved, not the estimate.
        let full = capacitated_cost(&pts, None, &centers, t, 2.0);
        let est = capacitated_cost(&cpts, Some(&cws), &centers, t, 2.0);
        if full.is_finite() && est.is_finite() && full > 0.0 {
            worst = worst.max((est / full).max(full / est));
            compared += 1;
        }
    }
    assert!(compared >= 2, "too few feasible trials ({compared})");
    assert!(worst <= 1.25, "distributed coreset quality {worst}");
}

#[test]
fn sharding_choice_does_not_change_instance_decisions() {
    // The same data split 2 ways vs 6 ways: merged summaries should lead
    // the coordinator to the same accepted o (the protocol's merge is
    // exact for cell counts — only which machine held a point changes).
    let p = params();
    let pts = gaussian_mixture(p.grid, 5000, 3, 0.04, 67);
    let (a, _) = DistributedCoreset::run(
        &split_round_robin(&pts, 2),
        &p,
        &StreamParams::default(),
        29,
    )
    .expect("2 shards");
    let (b, _) = DistributedCoreset::run(
        &split_round_robin(&pts, 6),
        &p,
        &StreamParams::default(),
        29,
    )
    .expect("6 shards");
    assert_eq!(a.o, b.o, "accepted o must not depend on the sharding");
    assert_eq!(a.len(), b.len(), "same hash seed ⇒ same samples survive");
}

#[test]
fn broadcast_cost_is_tiny_and_upload_scales_with_s() {
    let p = params();
    let pts = gaussian_mixture(p.grid, 6000, 3, 0.04, 71);
    let mut uploads = Vec::new();
    for s in [2usize, 4, 8] {
        let shards = split_round_robin(&pts, s);
        let (_, stats) =
            DistributedCoreset::run(&shards, &p, &StreamParams::default(), 31).expect("run");
        // Broadcast: shift (d·8 bytes) + seed per machine.
        assert!(stats.broadcast_bytes < (64 * s) as u64);
        uploads.push(stats.upload_bytes);
    }
    // Upload grows with s but sublinearly in these regimes (per-machine
    // summaries shrink as shards shrink).
    assert!(uploads[2] > uploads[0] / 2, "more machines, more messages");
}
