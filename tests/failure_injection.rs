//! Failure-path integration tests: every FAIL branch the paper defines
//! (and the engineering guards around them) must be reachable and
//! reported, never silently absorbed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_core::assign::{build_assignment_oracle, OracleError};
use sbc_core::{build_coreset, CoresetParams};
use sbc_geometry::dataset::gaussian_mixture;
use sbc_geometry::{GridParams, Point};
use sbc_streaming::storing::{Backend, Storing, StoringConfig, StoringFail};
use sbc_streaming::{StreamCoresetBuilder, StreamParams};

#[test]
fn oracle_rejects_infeasible_capacity() {
    let gp = GridParams::from_log_delta(7, 2);
    let params = CoresetParams::builder(2, gp).build().unwrap();
    let pts = gaussian_mixture(gp, 2000, 2, 0.05, 1);
    let mut rng = StdRng::seed_from_u64(1);
    let coreset = build_coreset(&pts, &params, &mut rng).unwrap();
    let centers = vec![Point::new(vec![10, 10]), Point::new(vec![100, 100])];
    // Capacity 10 ≪ total weight/2.
    match build_assignment_oracle(&coreset, &params, &centers, 10.0) {
        Err(OracleError::Infeasible {
            total_weight,
            capacity,
        }) => {
            assert!(total_weight > 2.0 * capacity);
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
}

#[test]
fn storing_overflow_and_alpha_fail_paths() {
    let gp = GridParams::from_log_delta(7, 2);
    let grid = sbc_geometry::GridHierarchy::unshifted(gp);
    let pts = sbc_geometry::dataset::uniform(gp, 400, 2);
    let mut rng = StdRng::seed_from_u64(2);

    // α exceeded (exact backend, generous cap).
    let mut st = Storing::new(
        &grid,
        6,
        StoringConfig {
            alpha: 8,
            beta: 2,
            rows: 2,
        },
        Backend::Exact { cap_cells: 10_000 },
        &mut rng,
    );
    for p in &pts {
        st.update(p, 1);
    }
    assert!(matches!(st.finish(), Err(StoringFail::TooManyCells { .. })));

    // Occupancy cap (exact backend, tight cap) ⇒ Overflowed, memory freed.
    let mut st2 = Storing::new(
        &grid,
        6,
        StoringConfig {
            alpha: 8,
            beta: 2,
            rows: 2,
        },
        Backend::Exact { cap_cells: 16 },
        &mut rng,
    );
    for p in &pts {
        st2.update(p, 1);
    }
    assert!(st2.is_dead());
    assert_eq!(st2.finish().unwrap_err(), StoringFail::Overflowed);

    // Sketch decode failure on over-dense content.
    let mut st3 = Storing::new(
        &grid,
        6,
        StoringConfig {
            alpha: 8,
            beta: 2,
            rows: 3,
        },
        Backend::Sketch,
        &mut rng,
    );
    for p in &pts {
        st3.update(p, 1);
    }
    assert!(matches!(
        st3.finish(),
        Err(StoringFail::DecodeFailed | StoringFail::TooManyCells { .. })
    ));
}

#[test]
fn stream_of_one_point_still_works() {
    // Degenerate but legal: a single point must produce a one-point
    // coreset of weight ≈ 1 at some instance.
    let gp = GridParams::from_log_delta(6, 2);
    let params = CoresetParams::builder(1, gp).build().unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut b = StreamCoresetBuilder::new(params, StreamParams::default(), &mut rng);
    b.insert(&Point::new(vec![17, 23]));
    let cs = b.finish().expect("single-point coreset");
    assert_eq!(cs.len(), 1);
    assert!((cs.total_weight() - 1.0).abs() < 1e-9);
}

#[test]
fn delete_everything_leaves_unbuildable_state() {
    let gp = GridParams::from_log_delta(6, 2);
    let params = CoresetParams::builder(2, gp).build().unwrap();
    let pts = sbc_geometry::dataset::uniform(gp, 100, 5);
    let mut rng = StdRng::seed_from_u64(4);
    let mut b = StreamCoresetBuilder::new(params, StreamParams::default(), &mut rng);
    for p in &pts {
        b.insert(p);
    }
    for p in &pts {
        b.delete(p);
    }
    assert_eq!(b.net_count(), 0);
    assert!(
        b.finish().is_err(),
        "empty final set must not yield a coreset"
    );
}

#[test]
fn paper_profile_constants_are_usable_but_sample_everything() {
    // The paper-faithful constants produce φᵢ = 1 at laptop scale — the
    // construction still runs and simply keeps every located point.
    let gp = GridParams::from_log_delta(6, 2);
    let params = CoresetParams::builder(2, gp)
        .eps(0.3)
        .eta(0.3)
        .paper_faithful()
        .build()
        .unwrap();
    let pts = gaussian_mixture(gp, 500, 2, 0.05, 6);
    let mut rng = StdRng::seed_from_u64(5);
    let cs = build_coreset(&pts, &params, &mut rng).expect("paper profile");
    // φ = 1 everywhere ⇒ every located point is kept; duplicates merge
    // into weighted entries, so *total weight* (not distinct count)
    // tracks n (minus at most the dropped small parts).
    assert!(
        cs.total_weight() >= 0.9 * pts.len() as f64,
        "tw {}",
        cs.total_weight()
    );
    for e in cs.entries() {
        let m = e.weight.round();
        assert!(
            (e.weight - m).abs() < 1e-9 && m >= 1.0,
            "φ = 1 ⇒ integer multiplicity weights"
        );
    }
}

#[test]
fn dimension_mismatch_is_caught() {
    let gp = GridParams::from_log_delta(6, 3);
    let params = CoresetParams::builder(2, gp).build().unwrap();
    let pts = vec![Point::new(vec![1, 2])]; // d = 2, grid expects 3
    let mut rng = StdRng::seed_from_u64(7);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = build_coreset(&pts, &params, &mut rng);
    }));
    assert!(result.is_err(), "dimension mismatch must panic loudly");
}
