//! Streaming ↔ offline agreement (Theorem 4.5 vs Theorem 3.19): the
//! one-pass dynamic algorithm must deliver coresets of the same quality
//! as the offline construction, on insertion-only *and* on
//! insert+delete streams.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sbc_clustering::cost::capacitated_cost;
use sbc_clustering::kmeanspp::kmeanspp_seeds;
use sbc_core::{build_coreset, Coreset, CoresetParams};
use sbc_geometry::dataset::{gaussian_mixture, two_phase_dynamic};
use sbc_geometry::{GridParams, Point};
use sbc_streaming::model::{insert_delete_stream, insertion_stream, interleaved_stream};
use sbc_streaming::{StreamCoresetBuilder, StreamParams};

fn params() -> CoresetParams {
    CoresetParams::builder(3, GridParams::from_log_delta(8, 2))
        .build()
        .unwrap()
}

/// Worst cost-estimation ratio of a coreset over a few fixed (Z, t).
fn quality(points: &[Point], coreset: &Coreset, k: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let (cpts, cws) = coreset.split();
    let n = points.len() as f64;
    let mut worst: f64 = 1.0;
    for trial in 0..3 {
        let centers = kmeanspp_seeds(points, None, k, 2.0, &mut rng);
        let t = n / k as f64 * (1.2 + 0.4 * trial as f64);
        let full = capacitated_cost(points, None, &centers, t, 2.0);
        let est = capacitated_cost(&cpts, Some(&cws), &centers, 1.2 * t, 2.0);
        if full.is_finite() && full > 0.0 && est.is_finite() {
            let r = (est / full).max(full / est);
            worst = worst.max(r);
        }
    }
    worst
}

#[test]
fn insertion_stream_quality_matches_offline() {
    let p = params();
    let pts = gaussian_mixture(p.grid, 8000, 3, 0.04, 41);
    let mut rng = StdRng::seed_from_u64(5);

    let offline = build_coreset(&pts, &p, &mut rng).expect("offline");
    let mut builder = StreamCoresetBuilder::new(p.clone(), StreamParams::default(), &mut rng);
    builder.process_all(&insertion_stream(&pts));
    let streamed = builder.finish().expect("stream");

    let q_off = quality(&pts, &offline, 3, 100);
    let q_str = quality(&pts, &streamed, 3, 100);
    assert!(q_off <= 1.5, "offline quality {q_off}");
    assert!(q_str <= 1.6, "streaming quality {q_str}");
}

#[test]
fn dynamic_stream_equals_kept_only_stream_in_quality() {
    // Same kept set, once as a plain insertion stream and once with 50%
    // churn inserted-then-deleted: both coresets must estimate the kept
    // set's capacitated costs equally well.
    let p = params();
    let ds = two_phase_dynamic(p.grid, 6000, 3000, 3, 43);
    let mut rng = StdRng::seed_from_u64(6);

    let mut clean = StreamCoresetBuilder::new(p.clone(), StreamParams::default(), &mut rng);
    clean.process_all(&insertion_stream(&ds.kept));
    let cs_clean = clean.finish().expect("clean");

    let mut churned = StreamCoresetBuilder::new(p.clone(), StreamParams::default(), &mut rng);
    churned.process_all(&insert_delete_stream(&ds.kept, &ds.churn, &mut rng));
    let cs_churned = churned.finish().expect("churned");

    let q_clean = quality(&ds.kept, &cs_clean, 3, 200);
    let q_churned = quality(&ds.kept, &cs_churned, 3, 200);
    assert!(q_clean <= 1.6, "clean quality {q_clean}");
    assert!(q_churned <= 1.6, "churned quality {q_churned}");
}

#[test]
fn interleaved_deletions_also_work() {
    let p = params();
    let ds = two_phase_dynamic(p.grid, 5000, 2500, 3, 47);
    let mut rng = StdRng::seed_from_u64(7);
    let ops = interleaved_stream(&ds.kept, &ds.churn, &mut rng);
    let mut builder = StreamCoresetBuilder::new(p.clone(), StreamParams::default(), &mut rng);
    builder.process_all(&ops);
    assert_eq!(builder.net_count() as usize, ds.kept.len());
    let cs = builder.finish().expect("interleaved");
    let q = quality(&ds.kept, &cs, 3, 300);
    assert!(q <= 1.6, "interleaved quality {q}");
    // No deleted point may survive.
    let kept: std::collections::HashSet<&Point> = ds.kept.iter().collect();
    assert!(cs.entries().iter().all(|e| kept.contains(&e.point)));
}

#[test]
fn streaming_space_does_not_scale_with_n() {
    // Hash state and the per-instance summary budgets are fixed by
    // (k, d, L); only store occupancy varies, and for clusterable data it
    // is dominated by the poly-sized sampled substreams, not n.
    let p = params();
    let mut rng = StdRng::seed_from_u64(8);
    let small = gaussian_mixture(p.grid, 2000, 3, 0.04, 51);
    let large = gaussian_mixture(p.grid, 16000, 3, 0.04, 51);

    let mut bs = StreamCoresetBuilder::new(p.clone(), StreamParams::default(), &mut rng);
    bs.process_all(&insertion_stream(&small));
    let rep_small = bs.space_report();

    let mut bl = StreamCoresetBuilder::new(p.clone(), StreamParams::default(), &mut rng);
    bl.process_all(&insertion_stream(&large));
    let rep_large = bl.space_report();

    assert_eq!(
        rep_small.hash_bytes, rep_large.hash_bytes,
        "hash state is data-independent"
    );
    let growth = rep_large.store_bytes as f64 / rep_small.store_bytes.max(1) as f64;
    assert!(
        growth < 6.0,
        "8× data grew stores {growth:.1}× ({} → {} bytes)",
        rep_small.store_bytes,
        rep_large.store_bytes
    );
}
