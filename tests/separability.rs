//! Experiment S1 as a property test: the paper's structural insight
//! (Lemma 3.8, Figures 1 & 3) — **optimal capacitated assignments are
//! separable by curved `ℓr` half-spaces** after tie-canonicalization.
//!
//! For `r = 2` the separating surfaces are genuine hyperplanes (the
//! Pythagorean argument of Fig. 1); for `r = 1` they are hyperbola
//! branches (Fig. 3). Either way the assignment is determined by
//! `(k choose 2)` thresholds — the counting step that makes the coreset
//! union bound work.

use proptest::prelude::*;
use sbc_core::assign::reoptimize_fixed_sizes;
use sbc_core::halfspace::{canonicalize_assignment, AssignmentHalfspaces};
use sbc_flow::rounding::integral_capacitated_assignment;
use sbc_geometry::metric::dist_r_pow;
use sbc_geometry::Point;

fn instance() -> impl Strategy<Value = (Vec<Point>, Vec<Point>)> {
    (
        prop::collection::vec((1u32..=64, 1u32..=64), 4..12),
        prop::collection::vec((1u32..=64, 1u32..=64), 2..4),
    )
        .prop_map(|(ps, zs)| {
            // Footnote 4: input points must have distinct coordinates.
            let mut points: Vec<Point> = ps
                .into_iter()
                .map(|(a, b)| Point::new(vec![a, b]))
                .collect();
            points.sort();
            points.dedup();
            (
                points,
                zs.into_iter()
                    .map(|(a, b)| Point::new(vec![a, b]))
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimal_capacitated_assignments_are_halfspace_separable(
        (points, centers) in instance(),
        cap_extra in 0usize..3,
        r_sel in 0usize..2,
    ) {
        let r = if r_sel == 0 { 1.0 } else { 2.0 };
        let k = centers.len();
        let cap = points.len().div_ceil(k) + cap_extra;
        let Some(ia) = integral_capacitated_assignment(&points, None, &centers, cap as f64, r) else {
            return Ok(());
        };
        let before_cost: f64 = points
            .iter()
            .zip(&ia.center_of)
            .map(|(p, &c)| dist_r_pow(p, &centers[c], r))
            .sum();

        let mut assign = ia.center_of.clone();
        reoptimize_fixed_sizes(&points, &mut assign, &centers, r);
        canonicalize_assignment(&points, &mut assign, &centers, r);

        // Re-optimization + canonicalization must not increase cost nor
        // change sizes.
        let after_cost: f64 = points
            .iter()
            .zip(&assign)
            .map(|(p, &c)| dist_r_pow(p, &centers[c], r))
            .sum();
        prop_assert!(after_cost <= before_cost + 1e-6);
        for j in 0..k {
            let before = ia.center_of.iter().filter(|&&c| c == j).count();
            let after = assign.iter().filter(|&&c| c == j).count();
            prop_assert_eq!(before, after, "cluster sizes changed");
        }

        // The headline claim: representable by curved half-spaces.
        let hs = AssignmentHalfspaces::from_assignment(&points, &assign, &centers, r);
        prop_assert!(
            hs.is_valid_for(&points, &assign),
            "optimal capacitated assignment not separable (r = {r}, cap = {cap})"
        );
    }

    /// Region membership is a partition: every point is in at most one
    /// region (uniqueness is by construction of the complements; this
    /// checks the implementation's consistency on arbitrary probes).
    #[test]
    fn regions_are_mutually_exclusive(
        (points, centers) in instance(),
        probe_x in 1u32..=64,
        probe_y in 1u32..=64,
    ) {
        let r = 2.0;
        let assign: Vec<usize> = points
            .iter()
            .map(|p| sbc_geometry::metric::nearest(p, &centers).0)
            .collect();
        let hs = AssignmentHalfspaces::from_assignment(&points, &assign, &centers, r);
        let probe = Point::new(vec![probe_x, probe_y]);
        // region_of returns a unique Option — verify it agrees with raw
        // half-space membership.
        if let Some(i) = hs.region_of(&probe) {
            for j in 0..centers.len() {
                if j != i {
                    prop_assert!(hs.in_halfspace(i, j, &probe));
                }
            }
        }
    }
}
